//! Data converter (ADC/DAC) models.
//!
//! Conversions between the digital and optical domains dominate the power of
//! photonic accelerators (>85% for a single naive JTC, Fig. 3a); every
//! ReFOCUS optimization exists to amortize them. The paper takes published
//! 8-bit 14/16 nm converters and *linearly* scales power down to the target
//! frequency (a conservative choice it calls out in §6):
//!
//! * DAC: 14 GS/s switched-capacitor DAC \[7\] → 35.71 mW at 10 GHz.
//! * ADC: 10 GS/s time-domain ADC \[35\] → 0.93 mW at 625 MHz (the ADC only
//!   reads out every 16th cycle thanks to temporal accumulation).
//!
//! Behaviourally, converters quantize: the functional JTC path uses
//! [`Dac::quantize`]/[`Adc::sample`] so end-to-end numerics include 8-bit
//! effects.

use crate::units::{GigaHertz, MilliWatts};
use serde::{Deserialize, Serialize};

/// Linearly rescales a published converter power to a new clock.
fn scale_power(base: MilliWatts, base_clock: GigaHertz, clock: GigaHertz) -> MilliWatts {
    assert!(
        clock.value() > 0.0 && base_clock.value() > 0.0,
        "clocks must be positive"
    );
    base * (clock.value() / base_clock.value())
}

/// An 8-bit digital-to-analog converter driving an optical modulator.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::Dac;
///
/// let dac = Dac::new();
/// assert!((dac.power().value() - 35.71).abs() < 1e-9);
/// // 50% duty cycle (e.g. inputs reused once): half the average power.
/// assert!((dac.average_power(0.5).value() - 17.855).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    power: MilliWatts,
    clock: GigaHertz,
    bits: u8,
}

impl Dac {
    /// Table 6 power at the ReFOCUS clock.
    pub const DEFAULT_POWER: MilliWatts = MilliWatts::new(35.71);
    /// ReFOCUS system clock.
    pub const DEFAULT_CLOCK: GigaHertz = GigaHertz::new(10.0);
    /// ReFOCUS precision.
    pub const DEFAULT_BITS: u8 = 8;

    /// Creates the paper's default 8-bit, 10 GHz, 35.71 mW DAC.
    pub fn new() -> Self {
        Self {
            power: Self::DEFAULT_POWER,
            clock: Self::DEFAULT_CLOCK,
            bits: Self::DEFAULT_BITS,
        }
    }

    /// Creates a DAC running at `clock`, power-scaled linearly from the
    /// 10 GHz reference point.
    pub fn at_clock(clock: GigaHertz) -> Self {
        Self {
            power: scale_power(Self::DEFAULT_POWER, Self::DEFAULT_CLOCK, clock),
            clock,
            bits: Self::DEFAULT_BITS,
        }
    }

    /// Full-rate power draw.
    pub fn power(&self) -> MilliWatts {
        self.power
    }

    /// Operating clock.
    pub fn clock(&self) -> GigaHertz {
        self.clock
    }

    /// Converter resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of output levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Average power at a given activity `duty` in `[0, 1]` — the key lever
    /// of optical reuse: a DAC that is off while buffered light is replayed
    /// draws (ideally) nothing.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn average_power(&self, duty: f64) -> MilliWatts {
        assert!(
            (0.0..=1.0).contains(&duty),
            "duty cycle must be in [0,1], got {duty}"
        );
        self.power * duty
    }

    /// Quantizes a normalized value in `[0, 1]` to the DAC grid and returns
    /// the analog level actually produced.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]`.
    pub fn quantize(&self, value: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&value),
            "DAC input must be normalized to [0,1], got {value}"
        );
        let max = (self.levels() - 1) as f64;
        (value * max).round() / max
    }
}

impl Default for Dac {
    fn default() -> Self {
        Self::new()
    }
}

/// An 8-bit analog-to-digital converter reading a photodetector.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::Adc;
///
/// let adc = Adc::new();
/// assert!((adc.power().value() - 0.93).abs() < 1e-9);
/// let code = adc.sample(0.5, 1.0);
/// assert_eq!(code, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    power: MilliWatts,
    clock: GigaHertz,
    bits: u8,
}

impl Adc {
    /// Table 6 power at the temporally-accumulated readout clock.
    pub const DEFAULT_POWER: MilliWatts = MilliWatts::new(0.93);
    /// ReFOCUS ADC readout clock: 10 GHz / 16-cycle temporal accumulation.
    pub const DEFAULT_CLOCK: GigaHertz = GigaHertz::new(0.625);
    /// ReFOCUS precision.
    pub const DEFAULT_BITS: u8 = 8;

    /// Creates the paper's default 8-bit, 625 MHz, 0.93 mW ADC.
    pub fn new() -> Self {
        Self {
            power: Self::DEFAULT_POWER,
            clock: Self::DEFAULT_CLOCK,
            bits: Self::DEFAULT_BITS,
        }
    }

    /// Creates an ADC running at `clock`, power-scaled linearly from the
    /// 625 MHz reference point.
    pub fn at_clock(clock: GigaHertz) -> Self {
        Self {
            power: scale_power(Self::DEFAULT_POWER, Self::DEFAULT_CLOCK, clock),
            clock,
            bits: Self::DEFAULT_BITS,
        }
    }

    /// Full-rate power draw.
    pub fn power(&self) -> MilliWatts {
        self.power
    }

    /// Operating clock.
    pub fn clock(&self) -> GigaHertz {
        self.clock
    }

    /// Converter resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of quantization levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Average power at activity `duty` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn average_power(&self, duty: f64) -> MilliWatts {
        assert!(
            (0.0..=1.0).contains(&duty),
            "duty cycle must be in [0,1], got {duty}"
        );
        self.power * duty
    }

    /// Samples an analog value against `full_scale`, returning the digital
    /// code. Values above full scale clip to the maximum code; negative
    /// values clip to zero.
    ///
    /// # Panics
    ///
    /// Panics if `full_scale` is not positive.
    pub fn sample(&self, value: f64, full_scale: f64) -> u32 {
        assert!(full_scale > 0.0, "full scale must be positive");
        let max = (self.levels() - 1) as f64;
        let normalized = (value / full_scale).clamp(0.0, 1.0);
        (normalized * max).round() as u32
    }

    /// Reconstructs the analog value a digital `code` represents.
    pub fn reconstruct(&self, code: u32, full_scale: f64) -> f64 {
        let max = (self.levels() - 1) as f64;
        (code.min(self.levels() - 1) as f64 / max) * full_scale
    }
}

impl Default for Adc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table6() {
        assert_eq!(Dac::new().power().value(), 35.71);
        assert_eq!(Adc::new().power().value(), 0.93);
        assert_eq!(Dac::new().bits(), 8);
        assert_eq!(Adc::new().levels(), 256);
    }

    #[test]
    fn linear_frequency_scaling() {
        // [7] reports the DAC at 14 GS/s; scaling back up from our 10 GHz
        // anchor should recover 1.4x the power.
        let dac = Dac::at_clock(GigaHertz::new(14.0));
        assert!((dac.power().value() - 35.71 * 1.4).abs() < 1e-9);
        // ADC at 10 GS/s (the published rate) = 16x the 625 MHz power.
        let adc = Adc::at_clock(GigaHertz::new(10.0));
        assert!((adc.power().value() - 0.93 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_reduces_average_power() {
        let dac = Dac::new();
        assert_eq!(dac.average_power(0.0).value(), 0.0);
        assert_eq!(dac.average_power(1.0), dac.power());
        // FB buffer with R = 15: DACs active 1/16 of the time.
        let avg = dac.average_power(1.0 / 16.0);
        assert!((avg.value() - 35.71 / 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duty cycle must be in [0,1]")]
    fn rejects_invalid_duty() {
        let _ = Dac::new().average_power(1.01);
    }

    #[test]
    fn dac_quantization_grid() {
        let dac = Dac::new();
        assert_eq!(dac.quantize(0.0), 0.0);
        assert_eq!(dac.quantize(1.0), 1.0);
        let q = dac.quantize(0.5);
        // Error bounded by half an LSB.
        assert!((q - 0.5).abs() <= 0.5 / 255.0);
    }

    #[test]
    fn adc_round_trip_within_half_lsb() {
        let adc = Adc::new();
        for v in [0.0, 0.1, 0.33, 0.9, 1.0] {
            let code = adc.sample(v, 1.0);
            let back = adc.reconstruct(code, 1.0);
            assert!((back - v).abs() <= 0.5 / 255.0 + 1e-12, "v={v}");
        }
    }

    #[test]
    fn adc_clips_out_of_range() {
        let adc = Adc::new();
        assert_eq!(adc.sample(2.0, 1.0), 255);
        assert_eq!(adc.sample(-1.0, 1.0), 0);
    }

    #[test]
    fn adc_full_scale_rescales() {
        let adc = Adc::new();
        assert_eq!(adc.sample(8.0, 16.0), 128);
        assert!((adc.reconstruct(255, 16.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn dac_dominates_adc_after_temporal_accumulation() {
        // The motivating imbalance of §3: per-component DAC power is ~38x
        // the accumulated-readout ADC power.
        let ratio = Dac::new().power().value() / Adc::new().power().value();
        assert!(ratio > 30.0, "ratio = {ratio}");
    }
}
