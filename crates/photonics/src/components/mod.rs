//! Photonic component models.
//!
//! Each component couples a *behavioural* model (how it transforms an optical
//! signal) with the *cost* model (power, area, loss) the architecture
//! simulator charges for it. Default parameters come from the paper's
//! Table 6 ("Power of active components and the area of photonic components
//! used in ReFOCUS") and Table 1 (delay-line geometry), reproduced here:
//!
//! | Component | Power | Area |
//! |---|---|---|
//! | MRR | 0.42 mW | 255 µm² |
//! | Laser (min) | 0.1 mW / waveguide | 1.2·10⁵ µm² |
//! | Photodetector | — (passive detect) | 1920 µm² |
//! | Y-junction | passive | 2.6 µm² |
//! | Delay line (0.1 ns) | passive | 10⁴ µm², 8.57 mm, 6.94·10⁻³ dB |
//! | Lens | passive | 2·10⁶ µm² |
//!
//! (The 8-bit converters — ADC @ 625 MHz: 0.93 mW, DAC @ 10 GHz: 35.71 mW —
//! are electronic and live in [`converter`], kept alongside so the whole
//! Table 6 is regenerable from one module tree.)

pub mod converter;
pub mod delay_line;
pub mod laser;
pub mod lens;
pub mod mrr;
pub mod nonlinear;
pub mod photodetector;
pub mod slow_light;
pub mod y_junction;

pub use converter::{Adc, Dac};
pub use delay_line::DelayLine;
pub use laser::Laser;
pub use lens::Lens;
pub use mrr::Mrr;
pub use nonlinear::NonlinearMaterial;
pub use photodetector::Photodetector;
pub use slow_light::SlowLightDelayLine;
pub use y_junction::YJunction;
