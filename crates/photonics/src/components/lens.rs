//! On-chip Fourier lens model.
//!
//! A 1-D metasurface lens computes a spatial Fourier transform of the field
//! on its front focal plane, passively and at time-of-flight latency. Two
//! lenses in series (with a nonlinearity between them) form the JTC. Lenses
//! are the single largest photonic area consumer (>50% of the baseline's
//! photonic area, Fig. 3b), which motivates sharing them across WDM
//! wavelengths (§4.2).

use crate::complex::Complex64;
use crate::fft::{fft, ifft};
use crate::units::SquareMicrometers;
use serde::{Deserialize, Serialize};

/// A 1-D on-chip Fourier lens.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::Lens;
/// use refocus_photonics::complex::Complex64;
///
/// let lens = Lens::new();
/// let mut field = vec![Complex64::ONE; 8];
/// lens.transform(&mut field);
/// // A uniform field focuses to a single spot (DC bin).
/// assert!(field[0].norm() > 7.9);
/// assert!(field[1].norm() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lens {
    area: SquareMicrometers,
}

impl Lens {
    /// Paper default footprint (Table 6): 2 mm² per lens.
    pub const DEFAULT_AREA: SquareMicrometers = SquareMicrometers::new(2e6);

    /// Creates a lens with the paper's default footprint.
    pub fn new() -> Self {
        Self {
            area: Self::DEFAULT_AREA,
        }
    }

    /// Creates a lens with an explicit footprint (the calibrated per-RFCU
    /// area model uses a slightly smaller effective lens, see DESIGN.md §2).
    pub fn with_area(area: SquareMicrometers) -> Self {
        Self { area }
    }

    /// Chip footprint.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Applies the lens's Fourier transform to a field in place.
    ///
    /// The optical transform is unitary up to scale; we use the unnormalized
    /// forward DFT, matching the convention in [`crate::fft`].
    pub fn transform(&self, field: &mut [Complex64]) {
        fft(field);
    }

    /// Applies the inverse transform (a second lens oriented to undo the
    /// first; physically a second forward transform plus coordinate flip,
    /// which is equivalent for intensity patterns).
    pub fn inverse_transform(&self, field: &mut [Complex64]) {
        ifft(field);
    }
}

impl Default for Lens {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_area_matches_table6() {
        assert_eq!(Lens::new().area().value(), 2e6);
    }

    #[test]
    fn lens_pair_is_identity() {
        let lens = Lens::new();
        let original: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new(i as f64, (i as f64).cos()))
            .collect();
        let mut field = original.clone();
        lens.transform(&mut field);
        lens.inverse_transform(&mut field);
        for (a, b) in field.iter().zip(&original) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn transform_is_passive_linear() {
        let lens = Lens::new();
        let a: Vec<Complex64> = (0..8).map(|i| Complex64::from_real(i as f64)).collect();
        let b: Vec<Complex64> = (0..8).map(|i| Complex64::new(0.0, -(i as f64))).collect();
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        lens.transform(&mut sum);
        lens.transform(&mut fa);
        lens.transform(&mut fb);
        for i in 0..8 {
            assert!((sum[i] - (fa[i] + fb[i])).norm() < 1e-9);
        }
    }

    #[test]
    fn custom_area() {
        let lens = Lens::with_area(SquareMicrometers::new(1.83e6));
        assert_eq!(lens.area().value(), 1.83e6);
    }
}
