//! Optical delay line model.
//!
//! A delay line is a spiral waveguide long enough that light takes a chosen
//! number of clock cycles to traverse it — the only way to "buffer" light,
//! since there is no optical memory (§4.1). Geometry and loss follow the
//! paper's Table 1: a 0.1 ns delay (one cycle at 10 GHz) costs 8.57 mm of
//! waveguide, 0.01 mm² of area, and 6.94·10⁻³ dB of loss, using the
//! ultra-low-loss silicon delay lines of Lee et al. \[28\].

use crate::units::{Decibels, GigaHertz, Millimeters, Nanoseconds, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 2.998e8;

/// Group index implied by Table 1: 8.57 mm of waveguide delays light by
/// 0.1 ns, i.e. the light travels at `c / n_g` with `n_g ≈ 3.50`.
pub const GROUP_INDEX: f64 = SPEED_OF_LIGHT_M_PER_S * 0.1e-9 / 8.57e-3;

/// An on-chip spiral waveguide delay line.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::DelayLine;
/// use refocus_photonics::units::GigaHertz;
///
/// // One-cycle delay at 10 GHz: the paper's Table 1 row.
/// let dl = DelayLine::for_cycles(1, GigaHertz::new(10.0));
/// assert!((dl.length().value() - 8.57).abs() < 0.01);
/// assert!((dl.area().value() - 0.01).abs() < 1e-4);
/// assert!((dl.loss().value() - 6.94e-3).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayLine {
    delay: Nanoseconds,
    cycles: u32,
}

impl DelayLine {
    /// Table 1 anchor: area per 0.1 ns of delay.
    pub const AREA_PER_CYCLE_10GHZ: SquareMillimeters = SquareMillimeters::new(0.01);
    /// Table 1 anchor: loss per 0.1 ns of delay.
    pub const LOSS_PER_CYCLE_10GHZ: Decibels = Decibels::new(6.94e-3);
    /// Table 1 anchor: length per 0.1 ns of delay.
    pub const LENGTH_PER_CYCLE_10GHZ: Millimeters = Millimeters::new(8.57);

    /// Creates a delay line that delays light by `cycles` clock cycles at
    /// clock frequency `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `clock` is not positive.
    pub fn for_cycles(cycles: u32, clock: GigaHertz) -> Self {
        assert!(cycles > 0, "a delay line must delay by at least one cycle");
        let delay = clock.period() * cycles as f64;
        Self { delay, cycles }
    }

    /// Creates a delay line for an explicit delay duration, quantized to
    /// whole cycles of `clock` (rounding up).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is not positive.
    pub fn for_delay(delay: Nanoseconds, clock: GigaHertz) -> Self {
        assert!(delay.value() > 0.0, "delay must be positive, got {delay}");
        let cycles = (delay.value() / clock.period().value()).ceil() as u32;
        Self::for_cycles(cycles.max(1), clock)
    }

    /// The delay this line imposes.
    pub fn delay(&self) -> Nanoseconds {
        self.delay
    }

    /// The delay in whole clock cycles.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Physical waveguide length: `c / n_g * delay`.
    pub fn length(&self) -> Millimeters {
        let metres = SPEED_OF_LIGHT_M_PER_S / GROUP_INDEX * self.delay.to_seconds().value();
        Millimeters::new(metres * 1e3)
    }

    /// Spiral footprint, scaling linearly with length per Table 1.
    pub fn area(&self) -> SquareMillimeters {
        let per_mm = Self::AREA_PER_CYCLE_10GHZ.value() / Self::LENGTH_PER_CYCLE_10GHZ.value();
        SquareMillimeters::new(self.length().value() * per_mm)
    }

    /// Total propagation loss, scaling linearly with length.
    pub fn loss(&self) -> Decibels {
        let per_mm = Self::LOSS_PER_CYCLE_10GHZ.value() / Self::LENGTH_PER_CYCLE_10GHZ.value();
        Decibels::new(self.length().value() * per_mm)
    }

    /// Linear power transmission through the line (`1 - l_d` in the paper's
    /// Eq. 2 notation).
    pub fn transmission(&self) -> f64 {
        self.loss().transmission()
    }

    /// Propagates a field amplitude through the line: attenuated by the
    /// loss (amplitude scales as sqrt of power transmission).
    pub fn propagate_amplitude(&self, amplitude: f64) -> f64 {
        amplitude * self.transmission().sqrt()
    }

    /// Propagates an optical *power* through the line.
    pub fn propagate_power(&self, power: f64) -> f64 {
        power * self.transmission()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: GigaHertz = GigaHertz::new(10.0);

    #[test]
    fn table1_row_reproduced() {
        let dl = DelayLine::for_cycles(1, CLOCK);
        assert!((dl.length().value() - 8.57).abs() < 1e-2, "{}", dl.length());
        assert!((dl.area().value() - 0.01).abs() < 1e-5, "{}", dl.area());
        assert!((dl.loss().value() - 6.94e-3).abs() < 1e-5, "{}", dl.loss());
    }

    #[test]
    fn scaling_is_linear_in_cycles() {
        let one = DelayLine::for_cycles(1, CLOCK);
        let sixteen = DelayLine::for_cycles(16, CLOCK);
        assert!((sixteen.length().value() - 16.0 * one.length().value()).abs() < 1e-9);
        assert!((sixteen.area().value() - 16.0 * one.area().value()).abs() < 1e-9);
        assert!((sixteen.loss().value() - 16.0 * one.loss().value()).abs() < 1e-9);
    }

    #[test]
    fn sixteen_cycle_delay_area_matches_paper() {
        // §4.2.1: 256 waveguides × 16-cycle delay lines ≈ 41 mm² (Fig. 9).
        let dl = DelayLine::for_cycles(16, CLOCK);
        let total = dl.area().value() * 256.0;
        assert!((total - 40.96).abs() < 0.1, "total = {total}");
    }

    #[test]
    fn transmission_is_high_for_short_lines() {
        let dl = DelayLine::for_cycles(1, CLOCK);
        let t = dl.transmission();
        assert!(t > 0.998 && t < 1.0, "t = {t}");
    }

    #[test]
    fn amplitude_consistent_with_power() {
        let dl = DelayLine::for_cycles(32, CLOCK);
        let p = dl.propagate_power(1.0);
        let a = dl.propagate_amplitude(1.0);
        assert!((a * a - p).abs() < 1e-12);
    }

    #[test]
    fn for_delay_quantizes_up() {
        let dl = DelayLine::for_delay(Nanoseconds::new(0.25), CLOCK);
        assert_eq!(dl.cycles(), 3);
        assert!((dl.delay().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn rejects_zero_cycles() {
        let _ = DelayLine::for_cycles(0, CLOCK);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn group_index_is_physical() {
        // Silicon waveguide group indices are ~3.5-4.3; Table 1 implies ~3.5.
        assert!(
            GROUP_INDEX > 3.0 && GROUP_INDEX < 4.5,
            "n_g = {GROUP_INDEX}"
        );
    }
}
