//! Passive nonlinear material model (the JTC's Fourier-plane square law).
//!
//! A JTC only computes a convolution because a *nonlinearity* sits at the
//! Fourier plane between the two lenses; without it, lens → lens is just an
//! identity (§2.1). ReFOCUS assumes a passive nonlinear material (ITO in its
//! epsilon-near-zero region, graphene, AlN — refs [4, 6, 26, 41]) that
//! realizes an intensity-dependent response approximating `|E|²`, drawing no
//! electrical power — the "NG" option of PhotoFourier.

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};

/// How the Fourier-plane nonlinearity maps the incident field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NonlinearResponse {
    /// Ideal square law: the output field amplitude equals the incident
    /// *intensity* `|E|²` (phase discarded). This is the textbook JTC
    /// nonlinearity and the paper's assumption.
    #[default]
    SquareLaw,
    /// Saturating square law: `|E|² / (1 + |E|²/I_sat)` — models a real
    /// material's finite dynamic range. Approaches `SquareLaw` as
    /// `I_sat → ∞`.
    Saturating {
        /// Saturation intensity in the same normalized units as `|E|²`.
        saturation_intensity: u32,
    },
}

/// A passive nonlinear element applied point-wise at the Fourier plane.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::NonlinearMaterial;
/// use refocus_photonics::complex::Complex64;
///
/// let nl = NonlinearMaterial::new();
/// let out = nl.apply_point(Complex64::new(3.0, 4.0));
/// assert!((out.re - 25.0).abs() < 1e-12);
/// assert_eq!(out.im, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NonlinearMaterial {
    response: NonlinearResponse,
}

impl NonlinearMaterial {
    /// Creates an ideal square-law nonlinearity (the paper's assumption).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a saturating nonlinearity with the given saturation intensity.
    pub fn saturating(saturation_intensity: u32) -> Self {
        Self {
            response: NonlinearResponse::Saturating {
                saturation_intensity,
            },
        }
    }

    /// The configured response curve.
    pub fn response(&self) -> NonlinearResponse {
        self.response
    }

    /// Applies the nonlinearity to one field sample.
    pub fn apply_point(&self, field: Complex64) -> Complex64 {
        let intensity = field.norm_sqr();
        let out = match self.response {
            NonlinearResponse::SquareLaw => intensity,
            NonlinearResponse::Saturating {
                saturation_intensity,
            } => intensity / (1.0 + intensity / saturation_intensity as f64),
        };
        Complex64::from_real(out)
    }

    /// Applies the nonlinearity to an entire Fourier-plane field in place.
    pub fn apply(&self, field: &mut [Complex64]) {
        for v in field.iter_mut() {
            *v = self.apply_point(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_law_returns_intensity() {
        let nl = NonlinearMaterial::new();
        let out = nl.apply_point(Complex64::from_polar(2.0, 1.0));
        assert!((out.re - 4.0).abs() < 1e-12);
        assert_eq!(out.im, 0.0);
    }

    #[test]
    fn square_law_is_phase_insensitive() {
        let nl = NonlinearMaterial::new();
        let a = nl.apply_point(Complex64::from_polar(1.3, 0.2));
        let b = nl.apply_point(Complex64::from_polar(1.3, -2.8));
        assert!((a.re - b.re).abs() < 1e-12);
    }

    #[test]
    fn saturating_approaches_square_law_for_weak_fields() {
        let nl = NonlinearMaterial::saturating(1_000_000);
        let field = Complex64::from_real(0.5);
        let ideal = NonlinearMaterial::new().apply_point(field);
        let sat = nl.apply_point(field);
        assert!((ideal.re - sat.re).abs() < 1e-6);
    }

    #[test]
    fn saturating_caps_strong_fields() {
        let nl = NonlinearMaterial::saturating(1);
        // intensity 100 -> 100 / 101 < 1 = saturation level.
        let out = nl.apply_point(Complex64::from_real(10.0));
        assert!(out.re < 1.0);
    }

    #[test]
    fn apply_covers_whole_plane() {
        let nl = NonlinearMaterial::new();
        let mut plane = vec![Complex64::new(1.0, 1.0); 4];
        nl.apply(&mut plane);
        for v in &plane {
            assert!((v.re - 2.0).abs() < 1e-12);
            assert_eq!(v.im, 0.0);
        }
    }
}
