//! Photodetector model.
//!
//! Photodetectors measure optical intensity (they are square-law devices) and
//! in ReFOCUS also perform two kinds of analog accumulation for free:
//! *temporal accumulation* — integrating the outputs of up to 16 cycles
//! before an ADC readout (§4.1.4) — and *WDM accumulation* — summing the
//! intensities of nearby wavelengths landing on the same detector (§4.2.2).

use crate::units::SquareMicrometers;
use serde::{Deserialize, Serialize};

/// A waveguide-coupled photodetector.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::Photodetector;
/// use refocus_photonics::complex::Complex64;
///
/// let pd = Photodetector::new();
/// let field = Complex64::from_polar(2.0, 1.234);
/// // Detection is phase-insensitive: intensity = |field|^2.
/// assert!((pd.detect(field) - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photodetector {
    area: SquareMicrometers,
    responsivity: f64,
    /// Ratio of the largest to the smallest detectable intensity.
    dynamic_range: f64,
}

impl Photodetector {
    /// Paper default footprint (Table 6, \[32\]) — about 10× an MRR, which is
    /// why sharing photodetectors across wavelengths matters (§4.2.2).
    pub const DEFAULT_AREA: SquareMicrometers = SquareMicrometers::new(1920.0);
    /// Default responsivity (A/W); detection math is normalized so this only
    /// matters relative to noise.
    pub const DEFAULT_RESPONSIVITY: f64 = 1.0;
    /// Dynamic range consistent with 8-bit conversion headroom; §5.4.2 notes
    /// a >153× signal spread is "too large for an 8-bit ADC" (256 levels).
    pub const DEFAULT_DYNAMIC_RANGE: f64 = 256.0;

    /// Creates a photodetector with default parameters.
    pub fn new() -> Self {
        Self {
            area: Self::DEFAULT_AREA,
            responsivity: Self::DEFAULT_RESPONSIVITY,
            dynamic_range: Self::DEFAULT_DYNAMIC_RANGE,
        }
    }

    /// Chip footprint.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Detector responsivity (photocurrent per optical watt, normalized).
    pub fn responsivity(&self) -> f64 {
        self.responsivity
    }

    /// Usable dynamic range (max/min detectable intensity).
    pub fn dynamic_range(&self) -> f64 {
        self.dynamic_range
    }

    /// Detects a complex optical field, returning the photocurrent
    /// (∝ intensity). Phase information is destroyed.
    pub fn detect(&self, field: crate::complex::Complex64) -> f64 {
        self.responsivity * field.norm_sqr()
    }

    /// Detects the incoherent sum of several wavelength channels landing on
    /// this detector (WDM accumulation): intensities add.
    pub fn detect_wdm(&self, fields: &[crate::complex::Complex64]) -> f64 {
        fields.iter().map(|f| self.detect(*f)).sum()
    }

    /// Temporally accumulates a sequence of per-cycle intensities before a
    /// single readout (temporal accumulation, §4.1.4).
    pub fn accumulate(&self, intensities: &[f64]) -> f64 {
        intensities.iter().sum()
    }

    /// Returns `true` if a signal spanning `ratio` (max/min power) fits the
    /// detector's dynamic range.
    pub fn fits_dynamic_range(&self, ratio: f64) -> bool {
        ratio <= self.dynamic_range
    }
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    #[test]
    fn default_matches_table6() {
        assert_eq!(Photodetector::new().area().value(), 1920.0);
    }

    #[test]
    fn detection_is_square_law() {
        let pd = Photodetector::new();
        assert_eq!(pd.detect(Complex64::new(3.0, 4.0)), 25.0);
    }

    #[test]
    fn detection_discards_phase() {
        let pd = Photodetector::new();
        let a = pd.detect(Complex64::from_polar(1.5, 0.0));
        let b = pd.detect(Complex64::from_polar(1.5, 2.9));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn wdm_channels_add_incoherently() {
        let pd = Photodetector::new();
        let ch = [Complex64::new(1.0, 0.0), Complex64::new(0.0, 2.0)];
        assert!((pd.detect_wdm(&ch) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn temporal_accumulation_sums() {
        let pd = Photodetector::new();
        let cycles = [0.5, 0.25, 0.25];
        assert_eq!(pd.accumulate(&cycles), 1.0);
    }

    #[test]
    fn dynamic_range_check() {
        let pd = Photodetector::new();
        assert!(pd.fits_dynamic_range(3.87)); // ReFOCUS-FB R=15 spread
        assert!(!pd.fits_dynamic_range(4.8e4)); // alpha=0.5, R=15 spread
    }

    #[test]
    fn photodetector_much_larger_than_mrr() {
        // §4.2.2: photodetectors are "around 10x larger than MRRs".
        let ratio = Photodetector::new().area().value() / super::super::Mrr::new().area().value();
        assert!(ratio > 5.0 && ratio < 15.0, "ratio = {ratio}");
    }
}
