//! Laser source model.
//!
//! Each waveguide needs a minimum optical power at the photodetector to be
//! detectable; the laser must additionally compensate for every loss between
//! source and detector (Y-junctions, delay lines). The *average* laser power
//! is therefore the minimum power scaled by the system's loss overhead
//! factor, which the optical-buffer models compute (paper Table 5, §5.4).

use crate::units::{MilliWatts, SquareMicrometers};
use serde::{Deserialize, Serialize};

/// An on-chip laser source (heterogeneously integrated III-V/Si DBR, \[13\]).
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::Laser;
///
/// let laser = Laser::new();
/// // A system with a 3.87x loss-compensation factor (ReFOCUS-FB, R = 15):
/// let avg = laser.average_power(3.87);
/// assert!((avg.value() - 0.387).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laser {
    min_power_per_waveguide: MilliWatts,
    area: SquareMicrometers,
    /// Wall-plug efficiency: electrical power = optical power / efficiency.
    wall_plug_efficiency: f64,
}

impl Laser {
    /// Paper default: minimum 0.1 mW optical power per waveguide (Table 6).
    pub const DEFAULT_MIN_POWER: MilliWatts = MilliWatts::new(0.1);
    /// Paper default footprint (Table 6, \[13\]).
    pub const DEFAULT_AREA: SquareMicrometers = SquareMicrometers::new(1.2e5);
    /// The paper folds electrical conversion into its 0.1 mW budget, so the
    /// default efficiency is 1 (the number is already "power charged").
    pub const DEFAULT_WALL_PLUG_EFFICIENCY: f64 = 1.0;

    /// Creates a laser with the paper's default parameters.
    pub fn new() -> Self {
        Self {
            min_power_per_waveguide: Self::DEFAULT_MIN_POWER,
            area: Self::DEFAULT_AREA,
            wall_plug_efficiency: Self::DEFAULT_WALL_PLUG_EFFICIENCY,
        }
    }

    /// Overrides the wall-plug efficiency.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < efficiency <= 1`.
    pub fn with_wall_plug_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "wall-plug efficiency must be in (0,1], got {efficiency}"
        );
        self.wall_plug_efficiency = efficiency;
        self
    }

    /// Minimum optical power required per waveguide for detection.
    pub fn min_power(&self) -> MilliWatts {
        self.min_power_per_waveguide
    }

    /// Chip footprint of one laser.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Average per-waveguide power once the loss-compensation
    /// `overhead_factor` (≥ 1) of the optical path is applied.
    ///
    /// # Panics
    ///
    /// Panics if `overhead_factor < 1` — a passive optical path can never
    /// require *less* than the minimum detectable power.
    pub fn average_power(&self, overhead_factor: f64) -> MilliWatts {
        assert!(
            overhead_factor >= 1.0,
            "loss-compensation factor must be >= 1, got {overhead_factor}"
        );
        self.min_power_per_waveguide * overhead_factor
    }

    /// The *excess* per-waveguide power spent purely on compensating
    /// optical-buffer losses: [`Laser::average_power`] minus the unity-
    /// overhead minimum. Zero at `overhead_factor == 1` (no buffer, or a
    /// lossless path); this is the quantity the attribution ledger books
    /// as the buffer's laser overhead.
    ///
    /// # Panics
    ///
    /// Panics if `overhead_factor < 1` (same contract as
    /// [`Laser::average_power`]).
    pub fn compensation_power(&self, overhead_factor: f64) -> MilliWatts {
        self.average_power(overhead_factor) - self.min_power_per_waveguide
    }

    /// Electrical power drawn to emit `optical` power.
    pub fn electrical_power(&self, optical: MilliWatts) -> MilliWatts {
        optical / self.wall_plug_efficiency
    }
}

impl Default for Laser {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table6() {
        let l = Laser::new();
        assert_eq!(l.min_power().value(), 0.1);
        assert_eq!(l.area().value(), 1.2e5);
    }

    #[test]
    fn unity_overhead_gives_minimum() {
        let l = Laser::new();
        assert_eq!(l.average_power(1.0), l.min_power());
    }

    #[test]
    fn overhead_scales_power() {
        let l = Laser::new();
        assert!((l.average_power(3.05).value() - 0.305).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_unity_overhead() {
        let _ = Laser::new().average_power(0.9);
    }

    #[test]
    fn wall_plug_efficiency_increases_electrical_power() {
        let l = Laser::new().with_wall_plug_efficiency(0.2);
        let e = l.electrical_power(MilliWatts::new(1.0));
        assert!((e.value() - 5.0).abs() < 1e-12);
    }
}
