//! Slow-light delay lines (paper §7.5 — a future-work direction).
//!
//! A "slow light" waveguide (e.g. an SiN Bragg-grating structure, Chen et
//! al. \[9\]) reduces the group velocity by an engineered factor, so the same
//! delay needs proportionally less length and area. The paper declines to
//! use them because current demonstrations have "relatively large loss";
//! this module models that trade-off so the design-space exploration can
//! quantify it (see the `slow_light` ablation experiment).

use crate::components::delay_line::{DelayLine, GROUP_INDEX, SPEED_OF_LIGHT_M_PER_S};
use crate::units::{Decibels, GigaHertz, Millimeters, Nanoseconds, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// A slow-light delay line: `slowdown`× shorter than a conventional spiral
/// for the same delay, at `loss_db_per_mm` propagation loss.
///
/// # Examples
///
/// ```
/// use refocus_photonics::components::slow_light::SlowLightDelayLine;
/// use refocus_photonics::units::GigaHertz;
///
/// // A 10x slowdown line from [9]-class gratings.
/// let sl = SlowLightDelayLine::for_cycles(16, GigaHertz::new(10.0), 10.0, 0.05);
/// // 10x less area than the conventional line...
/// assert!(sl.area().value() < 0.02);
/// // ...but much lossier.
/// assert!(sl.loss().value() > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowLightDelayLine {
    delay: Nanoseconds,
    cycles: u32,
    slowdown: f64,
    loss_db_per_mm: f64,
}

impl SlowLightDelayLine {
    /// Representative slowdown factor from \[9\]-class SiN Bragg gratings.
    pub const REFERENCE_SLOWDOWN: f64 = 10.0;
    /// Representative propagation loss (dB/mm) — orders of magnitude above
    /// the ultra-low-loss spiral's 8.1e-4 dB/mm, which is the paper's
    /// reason to hold off.
    pub const REFERENCE_LOSS_DB_PER_MM: f64 = 0.05;

    /// Creates a slow-light line delaying `cycles` cycles at `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero, `slowdown < 1`, or the loss is negative.
    pub fn for_cycles(cycles: u32, clock: GigaHertz, slowdown: f64, loss_db_per_mm: f64) -> Self {
        assert!(cycles > 0, "a delay line must delay by at least one cycle");
        assert!(slowdown >= 1.0, "slowdown must be >= 1, got {slowdown}");
        assert!(loss_db_per_mm >= 0.0, "loss must be non-negative");
        Self {
            delay: clock.period() * cycles as f64,
            cycles,
            slowdown,
            loss_db_per_mm,
        }
    }

    /// The reference \[9\]-class line.
    pub fn reference(cycles: u32, clock: GigaHertz) -> Self {
        Self::for_cycles(
            cycles,
            clock,
            Self::REFERENCE_SLOWDOWN,
            Self::REFERENCE_LOSS_DB_PER_MM,
        )
    }

    /// The delay imposed.
    pub fn delay(&self) -> Nanoseconds {
        self.delay
    }

    /// Delay in whole cycles.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Engineered slowdown factor (group-index multiplier).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Physical length: the conventional length divided by the slowdown.
    pub fn length(&self) -> Millimeters {
        let metres = SPEED_OF_LIGHT_M_PER_S / (GROUP_INDEX * self.slowdown)
            * self.delay.to_seconds().value();
        Millimeters::new(metres * 1e3)
    }

    /// Footprint, assuming the same area-per-length as the spiral.
    pub fn area(&self) -> SquareMillimeters {
        let per_mm =
            DelayLine::AREA_PER_CYCLE_10GHZ.value() / DelayLine::LENGTH_PER_CYCLE_10GHZ.value();
        SquareMillimeters::new(self.length().value() * per_mm)
    }

    /// Total propagation loss.
    pub fn loss(&self) -> Decibels {
        Decibels::new(self.length().value() * self.loss_db_per_mm)
    }

    /// Linear power transmission.
    pub fn transmission(&self) -> f64 {
        self.loss().transmission()
    }

    /// Area saved vs the conventional spiral for the same delay.
    pub fn area_saving_vs_spiral(&self, clock: GigaHertz) -> f64 {
        let spiral = DelayLine::for_cycles(self.cycles, clock);
        spiral.area().value() / self.area().value()
    }

    /// Loss penalty vs the conventional spiral (dB difference).
    pub fn loss_penalty_vs_spiral(&self, clock: GigaHertz) -> Decibels {
        let spiral = DelayLine::for_cycles(self.cycles, clock);
        self.loss() - spiral.loss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: GigaHertz = GigaHertz::new(10.0);

    #[test]
    fn slowdown_shrinks_length_proportionally() {
        let conventional = DelayLine::for_cycles(16, CLOCK);
        let slow = SlowLightDelayLine::for_cycles(16, CLOCK, 10.0, 0.05);
        let ratio = conventional.length().value() / slow.length().value();
        assert!((ratio - 10.0).abs() < 1e-9);
        assert!((slow.area_saving_vs_spiral(CLOCK) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reference_line_is_lossier_despite_being_shorter() {
        // §7.5's caveat: the loss *rate* overwhelms the length saving.
        let conventional = DelayLine::for_cycles(16, CLOCK);
        let slow = SlowLightDelayLine::reference(16, CLOCK);
        assert!(slow.length().value() < conventional.length().value());
        assert!(slow.loss().value() > conventional.loss().value());
        assert!(slow.loss_penalty_vs_spiral(CLOCK).value() > 0.0);
    }

    #[test]
    fn unity_slowdown_recovers_spiral_geometry() {
        let slow = SlowLightDelayLine::for_cycles(4, CLOCK, 1.0, 0.0);
        let spiral = DelayLine::for_cycles(4, CLOCK);
        assert!((slow.length().value() - spiral.length().value()).abs() < 1e-9);
        assert!((slow.area().value() - spiral.area().value()).abs() < 1e-12);
        assert_eq!(slow.transmission(), 1.0);
    }

    #[test]
    fn transmission_consistent_with_loss() {
        let slow = SlowLightDelayLine::reference(16, CLOCK);
        let t = slow.transmission();
        assert!((Decibels::from_transmission(t).value() - slow.loss().value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn rejects_speedup() {
        let _ = SlowLightDelayLine::for_cycles(1, CLOCK, 0.5, 0.0);
    }
}
