//! Complex arithmetic for optical field simulation.
//!
//! A coherent optical field at a point is a complex amplitude: its squared
//! magnitude is the optical intensity a photodetector sees, and its argument
//! is the optical phase. The JTC model in [`crate::jtc`] manipulates arrays of
//! these values. Implemented from scratch to keep the dependency set minimal.
//!
//! # Examples
//!
//! ```
//! use refocus_photonics::complex::Complex64;
//!
//! let e = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
//! assert!((e.re).abs() < 1e-12);
//! assert!((e.im - 2.0).abs() < 1e-12);
//! assert!((e.norm_sqr() - 4.0).abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^(i*theta)`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Euler's formula: `e^(i*theta)`.
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re^2 + im^2`.
    ///
    /// For an optical field this is the *intensity* — what a square-law
    /// photodetector (or the JTC's Fourier-plane nonlinearity) measures.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase) in radians, in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// The multiplicative inverse.
    ///
    /// Returns values containing infinities/NaN when `self` is zero, matching
    /// IEEE-754 division semantics.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    // Division via the reciprocal: z / w = z * w^-1.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, v| acc + v)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.5);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        // a * conj(a) = |a|^2
        let prod = a * a.conj();
        assert!((prod.re - 25.0).abs() < 1e-12);
        assert!(prod.im.abs() < 1e-12);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex64::from_polar(2.0, 0.7);
        assert!((a.norm() - 2.0).abs() < 1e-12);
        assert!((a.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_quarter_turn() {
        let q = Complex64::cis(PI / 2.0);
        assert!(close(q, Complex64::I));
        // Four quarter turns return to 1.
        let full = q * q * q * q;
        assert!(close(full, Complex64::ONE));
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn inv_of_i() {
        assert!(close(Complex64::I.inv(), -Complex64::I));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::ONE;
        assert_eq!(a, Complex64::new(2.0, 1.0));
        a -= Complex64::I;
        assert_eq!(a, Complex64::new(2.0, 0.0));
        a *= Complex64::I;
        assert_eq!(a, Complex64::new(0.0, 2.0));
    }

    #[test]
    fn scalar_ops() {
        let a = Complex64::new(1.0, -2.0);
        assert_eq!(a * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(2.0 * a, Complex64::new(2.0, -4.0));
        assert_eq!(a / 2.0, Complex64::new(0.5, -1.0));
    }
}
