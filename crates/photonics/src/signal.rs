//! 1-D signal utilities: padding, convolution, and correlation.
//!
//! The JTC computes convolutions optically; this module provides the digital
//! reference implementations (direct O(N·K) and FFT-based O(N log N)) that
//! the optical model is validated against, plus the padding/tiling helpers
//! shared with [`refocus_nn`'s row tiling](https://docs.rs).
//!
//! Conventions:
//! * `convolve` is **linear convolution**: `y[n] = sum_k a[k] * b[n-k]`,
//!   output length `a.len() + b.len() - 1`.
//! * `correlate` is **cross-correlation**: `y[n] = sum_k a[k+n] * b[k]` for
//!   lag `n` in `[-(b.len()-1), a.len()-1]`, which is what a CNN "convolution"
//!   actually computes and what the JTC's cross term produces.
//! * `circular_convolve` wraps modulo the signal length, matching the
//!   inherent circularity of the lens-pair Fourier transform.

use crate::complex::Complex64;
use crate::fft::{fft, ifft};

/// Returns `x` zero-padded on the right to length `len`.
///
/// # Panics
///
/// Panics if `len < x.len()`.
pub fn zero_pad(x: &[f64], len: usize) -> Vec<f64> {
    assert!(
        len >= x.len(),
        "cannot pad signal of length {} down to {}",
        x.len(),
        len
    );
    let mut y = Vec::with_capacity(len);
    y.extend_from_slice(x);
    y.resize(len, 0.0);
    y
}

/// Linear convolution by direct summation: output length `a.len()+b.len()-1`.
///
/// Returns an empty vector if either input is empty.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n = a.len() + b.len() - 1;
    let mut y = vec![0.0; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            y[i + j] += ai * bj;
        }
    }
    y
}

/// Linear convolution via FFT (convolution theorem), same semantics as
/// [`convolve_direct`].
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = out_len.next_power_of_two();
    let mut fa: Vec<Complex64> = a.iter().map(|&v| Complex64::from_real(v)).collect();
    fa.resize(m, Complex64::ZERO);
    let mut fb: Vec<Complex64> = b.iter().map(|&v| Complex64::from_real(v)).collect();
    fb.resize(m, Complex64::ZERO);
    fft(&mut fa);
    fft(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ifft(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|v| v.re).collect()
}

/// Circular convolution of two equal-length signals.
///
/// `y[n] = sum_k a[k] * b[(n-k) mod N]`. This is what a Fourier-transform
/// pair computes natively; linear convolution requires enough zero padding
/// that the wrap-around never lands on non-zero samples.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "circular convolution requires equal lengths"
    );
    let n = a.len();
    let mut y = vec![0.0; n];
    for k in 0..n {
        if a[k] == 0.0 {
            continue;
        }
        for j in 0..n {
            y[(k + j) % n] += a[k] * b[j];
        }
    }
    y
}

/// Full cross-correlation `y[n] = sum_k a[k+n] * b[k]`.
///
/// The output covers lags `-(b.len()-1) ..= a.len()-1`, so its length is
/// `a.len() + b.len() - 1` and index `i` corresponds to lag
/// `i - (b.len() - 1)`.
pub fn correlate(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    // corr(a, b)[lag] = conv(a, reverse(b))[lag + b.len() - 1].
    let rev: Vec<f64> = b.iter().rev().copied().collect();
    convolve_direct(a, &rev)
}

/// "Valid" cross-correlation: only lags where `b` fully overlaps `a`.
///
/// Output length is `a.len() - b.len() + 1`; element `i` is
/// `sum_k a[i+k] * b[k]`. This is a CNN's valid "convolution".
///
/// # Panics
///
/// Panics if `b` is longer than `a` or either is empty.
pub fn correlate_valid(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert!(!a.is_empty() && !b.is_empty(), "inputs must be non-empty");
    assert!(
        b.len() <= a.len(),
        "kernel ({}) longer than signal ({})",
        b.len(),
        a.len()
    );
    (0..=a.len() - b.len())
        .map(|i| b.iter().enumerate().map(|(k, &bk)| a[i + k] * bk).sum())
        .collect()
}

/// Maximum absolute difference between two signals.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square error between two signals.
///
/// # Panics
///
/// Panics if lengths differ or the signals are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    assert!(!a.is_empty(), "rmse of empty signals is undefined");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pad_extends() {
        assert_eq!(zero_pad(&[1.0, 2.0], 4), vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(zero_pad(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn zero_pad_rejects_truncation() {
        let _ = zero_pad(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn convolve_known_values() {
        // [1,2,3] * [1,1] = [1,3,5,3]
        assert_eq!(
            convolve_direct(&[1.0, 2.0, 3.0], &[1.0, 1.0]),
            vec![1.0, 3.0, 5.0, 3.0]
        );
    }

    #[test]
    fn convolve_fft_matches_direct() {
        let a: Vec<f64> = (0..37).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let b: Vec<f64> = (0..9).map(|i| (i as f64 * 0.4).sin()).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert!(max_abs_diff(&d, &f) < 1e-9);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, -2.0, 0.5];
        let b = [3.0, 0.0, 1.0, 2.0];
        assert_eq!(convolve_direct(&a, &b), convolve_direct(&b, &a));
    }

    #[test]
    fn empty_inputs_give_empty_outputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
        assert!(correlate(&[], &[]).is_empty());
    }

    #[test]
    fn circular_matches_linear_with_enough_padding() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        let lin = convolve_direct(&a, &b); // length 4
        let n = 4;
        let ca = zero_pad(&a, n);
        let cb = zero_pad(&b, n);
        let circ = circular_convolve(&ca, &cb);
        assert!(max_abs_diff(&lin, &circ) < 1e-12);
    }

    #[test]
    fn circular_wraps_without_padding() {
        // [1,0] (*) [1,1] circularly = [1,1]; linear would be [1,1,0].
        let y = circular_convolve(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(y, vec![1.0, 1.0]);
    }

    #[test]
    fn correlate_valid_known_values() {
        // a = [1,2,3,4], b = [1,1]: [3, 5, 7]
        assert_eq!(
            correlate_valid(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0]),
            vec![3.0, 5.0, 7.0]
        );
    }

    #[test]
    fn full_correlation_contains_valid_part() {
        let a = [0.5, -1.0, 2.0, 3.0, 1.0];
        let b = [1.0, 0.5, -0.5];
        let full = correlate(&a, &b);
        let valid = correlate_valid(&a, &b);
        // Valid region starts at lag 0, i.e. index b.len()-1 of the full output.
        let start = b.len() - 1;
        assert!(max_abs_diff(&full[start..start + valid.len()], &valid) < 1e-12);
    }

    #[test]
    fn correlation_vs_convolution_reversal() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let corr = correlate(&a, &b);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        let conv = convolve_direct(&a, &rev);
        assert_eq!(corr, conv);
    }

    #[test]
    fn rmse_and_max_diff() {
        let a = [1.0, 2.0];
        let b = [1.0, 4.0];
        assert_eq!(max_abs_diff(&a, &b), 2.0);
        assert!((rmse(&a, &b) - (2.0f64 / 2.0f64.sqrt())).abs() < 1e-12);
    }
}
