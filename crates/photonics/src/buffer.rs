//! Optical buffer models: reusing light through delay lines (paper §4.1).
//!
//! There is no optical memory, but a delay line makes light *come back
//! later*. ReFOCUS exploits that in two buffer designs:
//!
//! * **Feedback** ([`FeedbackBuffer`], §4.1.1): a Y-junction splits the DAC
//!   output; one arm computes, the other circulates through a delay line and
//!   re-enters before the junction through a switch MRR. Light can be reused
//!   `R` times, but each loop attenuates by `(1-l_d)·(1-α)` (paper Eq. 2-3),
//!   so the laser must over-provision and filters must be rescaled.
//! * **Feedforward** ([`FeedforwardBuffer`], §4.1.2): the delayed arm joins
//!   the compute path *after* the junction, so light is reused exactly once,
//!   and choosing `α = (1-l_d)/(2-l_d)` (Eq. 4) makes the original and
//!   delayed copies equally strong — no rescaling needed.
//!
//! The laser-power / dynamic-range trade-off of the feedback design is the
//! paper's Table 5; [`FeedbackBuffer::relative_laser_power`] and
//! [`FeedbackBuffer::dynamic_range`] regenerate it exactly (the table
//! assumes the final 16-cycle delay line).

use crate::components::{DelayLine, Mrr, YJunction};
use crate::units::GigaHertz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing an optical buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferError {
    /// Split ratio outside `(0, 1)`.
    InvalidSplitRatio {
        /// The rejected value.
        alpha: f64,
    },
    /// Zero reuses requested — use no buffer instead.
    ZeroReuse,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::InvalidSplitRatio { alpha } => {
                write!(f, "split ratio must be in (0, 1), got {alpha}")
            }
            BufferError::ZeroReuse => write!(f, "a buffer with zero reuses is pointless"),
        }
    }
}

impl std::error::Error for BufferError {}

/// Feedback optical buffer: reuse light `R` times through a loop.
///
/// # Examples
///
/// ```
/// use refocus_photonics::buffer::FeedbackBuffer;
/// use refocus_photonics::units::GigaHertz;
///
/// // ReFOCUS-FB: R = 15 reuses, optimal split, 16-cycle delay at 10 GHz.
/// let buf = FeedbackBuffer::refocus_fb();
/// assert!((buf.relative_laser_power() - 3.87).abs() < 0.02);
/// assert!((buf.dynamic_range() - 3.87).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackBuffer {
    alpha: f64,
    reuses: u32,
    delay_line: DelayLine,
}

impl FeedbackBuffer {
    /// Creates a feedback buffer.
    ///
    /// * `alpha` — Y-junction split ratio (power fraction to the JTC).
    /// * `reuses` — how many times each generated signal is replayed (`R`).
    /// * `delay_cycles` — delay line length `M` in cycles at `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`BufferError`] if `alpha` is not in `(0, 1)` or `reuses`
    /// is 0.
    pub fn new(
        alpha: f64,
        reuses: u32,
        delay_cycles: u32,
        clock: GigaHertz,
    ) -> Result<Self, BufferError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(BufferError::InvalidSplitRatio { alpha });
        }
        if reuses == 0 {
            return Err(BufferError::ZeroReuse);
        }
        Ok(Self {
            alpha,
            reuses,
            delay_line: DelayLine::for_cycles(delay_cycles, clock),
        })
    }

    /// The optimal split ratio `α = 1/(R+1)` (§5.4.2) for `reuses` replays.
    pub fn optimal_split_ratio(reuses: u32) -> f64 {
        1.0 / (reuses + 1) as f64
    }

    /// Creates a buffer with the optimal `α = 1/(R+1)` split.
    ///
    /// # Errors
    ///
    /// Returns [`BufferError::ZeroReuse`] if `reuses` is 0.
    pub fn with_optimal_split(
        reuses: u32,
        delay_cycles: u32,
        clock: GigaHertz,
    ) -> Result<Self, BufferError> {
        Self::new(
            Self::optimal_split_ratio(reuses),
            reuses,
            delay_cycles,
            clock,
        )
    }

    /// The exact ReFOCUS-FB configuration: R = 15 optimal-split reuses on a
    /// 16-cycle delay line at 10 GHz (§5.1, §5.4.2).
    pub fn refocus_fb() -> Self {
        Self::with_optimal_split(15, 16, GigaHertz::new(10.0))
            .expect("the paper configuration is valid")
    }

    /// Split ratio `α`.
    pub fn split_ratio(&self) -> f64 {
        self.alpha
    }

    /// Number of replays `R`.
    pub fn reuses(&self) -> u32 {
        self.reuses
    }

    /// The delay line this buffer is built on.
    pub fn delay_line(&self) -> &DelayLine {
        &self.delay_line
    }

    /// Per-loop power retention `(1-l_d)·(1-α)` — the factor between
    /// consecutive `X_i` in paper Eq. 2.
    pub fn retention_per_reuse(&self) -> f64 {
        self.delay_line.transmission() * (1.0 - self.alpha)
    }

    /// Power reaching the JTC at iteration `i` for unit laser power:
    /// `X_i = α · ((1-l_d)(1-α))^i` (paper Eq. 3, including the initial
    /// Y-junction split).
    pub fn power_at_iteration(&self, i: u32) -> f64 {
        self.alpha * self.retention_per_reuse().powi(i as i32)
    }

    /// Dynamic range `X_0 / X_R` the photodetector and ADC must absorb.
    pub fn dynamic_range(&self) -> f64 {
        self.retention_per_reuse().powi(-(self.reuses as i32))
    }

    /// Average laser power relative to a bufferless system (Table 5).
    ///
    /// The laser must be sized so the *weakest* (last) replay is still at
    /// the minimum detectable power, but only fires once per `R+1` cycles:
    /// `LP_rel = 1 / (α · (R+1) · ρ^R)` with `ρ` the per-loop retention.
    pub fn relative_laser_power(&self) -> f64 {
        1.0 / (self.alpha
            * (self.reuses + 1) as f64
            * self.retention_per_reuse().powi(self.reuses as i32))
    }

    /// Duty cycle of the input DACs: new light is generated once per `R+1`
    /// cycles of use.
    pub fn dac_duty_cycle(&self) -> f64 {
        1.0 / (self.reuses + 1) as f64
    }

    /// Weight rescaling factors for the hardware-aware scheduler (§4.1.1):
    /// filters processed at iteration `i` see inputs attenuated by
    /// `ρ^i`, so their outputs must be scaled back by `ρ^{-i}` digitally.
    pub fn weight_rescale_factors(&self) -> Vec<f64> {
        let rho = self.retention_per_reuse();
        (0..=self.reuses).map(|i| rho.powi(-(i as i32))).collect()
    }

    /// Simulates the replay power sequence step by step through the actual
    /// component models (Y-junction + delay line), for unit input power.
    /// Cross-validates the closed forms above.
    pub fn simulate_replays(&self) -> Vec<f64> {
        let junction =
            YJunction::with_split_ratio(self.alpha).expect("alpha validated at construction");
        let mut outputs = Vec::with_capacity(self.reuses as usize + 1);
        let mut circulating = 1.0;
        for _ in 0..=self.reuses {
            let (to_jtc, to_loop) = junction.split_power(circulating);
            outputs.push(to_jtc);
            circulating = self.delay_line.propagate_power(to_loop);
        }
        outputs
    }

    /// Simulates the replay power sequence under per-replay loss variation
    /// from a [`FaultInjector`](crate::faults::FaultInjector): each trip
    /// through the delay line multiplies the circulating power by the
    /// injector's loss factor for `(generation, replay)`. With a
    /// transparent injector this equals
    /// [`FeedbackBuffer::simulate_replays`] exactly.
    pub fn replay_powers_with_loss_variation(
        &self,
        injector: &crate::faults::FaultInjector,
        generation: u64,
    ) -> Vec<f64> {
        let junction =
            YJunction::with_split_ratio(self.alpha).expect("alpha validated at construction");
        let mut outputs = Vec::with_capacity(self.reuses as usize + 1);
        let mut circulating = 1.0;
        for replay in 0..=self.reuses {
            let (to_jtc, to_loop) = junction.split_power(circulating);
            outputs.push(to_jtc);
            circulating = self.delay_line.propagate_power(to_loop)
                * injector.buffer_loss_factor(generation, replay);
        }
        outputs
    }

    /// Worst-case relative error the scheduler's *static* weight rescale
    /// factors commit when the actual per-replay retention varies per the
    /// fault model: `max_i |X̃_i · ρ^{-i} / X_0 − 1|`. Zero for a
    /// transparent injector.
    pub fn rescale_error_with_loss_variation(
        &self,
        injector: &crate::faults::FaultInjector,
        generation: u64,
    ) -> f64 {
        let actual = self.replay_powers_with_loss_variation(injector, generation);
        let factors = self.weight_rescale_factors();
        let x0 = actual[0];
        actual
            .iter()
            .zip(&factors)
            .map(|(x, f)| (x * f / x0 - 1.0).abs())
            .fold(0.0, f64::max)
    }

    /// Failure injection: streams a sequence of generated field amplitudes
    /// through the buffer with a *leaky* switch MRR and returns the
    /// amplitude sequence the JTC actually receives.
    ///
    /// §4.1.1 explains why the switch exists: "when a new input signal is
    /// generated ..., the reuse signal should be blocked to avoid
    /// corruption of the final input". With off-state power leakage
    /// `leakage > 0`, a ghost of the previous signal rides along with each
    /// new generation; with `leakage = 0` the stream matches
    /// [`FeedbackBuffer::simulate_replays`] scaling exactly.
    ///
    /// Each element of `generated` is the amplitude of a fresh signal; it
    /// is used once and replayed [`FeedbackBuffer::reuses`] times, so the
    /// output has `generated.len() * (R + 1)` entries.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= leakage < 1`.
    pub fn simulate_stream_with_leaky_switch(&self, generated: &[f64], leakage: f64) -> Vec<f64> {
        assert!(
            (0.0..1.0).contains(&leakage),
            "leakage must be in [0,1), got {leakage}"
        );
        let junction =
            YJunction::with_split_ratio(self.alpha).expect("alpha validated at construction");
        let switch = Mrr::new().with_off_leakage(leakage);
        let mut out = Vec::with_capacity(generated.len() * (self.reuses as usize + 1));
        // Amplitude waiting at the end of the delay line.
        let mut delayed = 0.0;
        for &g in generated {
            for replay in 0..=self.reuses {
                // Switch is OFF on generation cycles (replay 0): only
                // leakage passes. It is ON during replays: the delayed
                // signal couples through, and the input MRR is off.
                let feedback = switch.switch(delayed, replay > 0);
                let fresh = if replay == 0 { g } else { 0.0 };
                let at_junction = fresh + feedback;
                let (to_jtc, to_loop) = junction.split_amplitude(at_junction);
                out.push(to_jtc);
                delayed = self.delay_line.propagate_amplitude(to_loop);
            }
        }
        out
    }

    /// RMS corruption a leaky switch introduces relative to an ideal
    /// switch, for a seedless deterministic alternating test stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= leakage < 1`.
    pub fn switch_leakage_corruption(&self, leakage: f64) -> f64 {
        let stream: Vec<f64> = (0..16).map(|i| 1.0 + 0.5 * ((i % 3) as f64)).collect();
        let ideal = self.simulate_stream_with_leaky_switch(&stream, 0.0);
        let leaky = self.simulate_stream_with_leaky_switch(&stream, leakage);
        let signal: f64 = ideal.iter().map(|v| v * v).sum();
        let noise: f64 = ideal
            .iter()
            .zip(&leaky)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (noise / signal).sqrt()
    }
}

/// Feedforward optical buffer: reuse light exactly once, losslessly in
/// *balance* (both copies equally strong).
///
/// # Examples
///
/// ```
/// use refocus_photonics::buffer::FeedforwardBuffer;
/// use refocus_photonics::units::GigaHertz;
///
/// let buf = FeedforwardBuffer::refocus_ff();
/// // Eq. 4 split ratio makes both copies identical:
/// let (direct, delayed) = buf.copy_powers(1.0);
/// assert!((direct - delayed).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedforwardBuffer {
    alpha: f64,
    delay_line: DelayLine,
}

impl FeedforwardBuffer {
    /// Creates a feedforward buffer with the Eq. 4 balanced split ratio
    /// `α = (1-l_d)/(2-l_d)` for a delay line of `delay_cycles` at `clock`.
    pub fn balanced(delay_cycles: u32, clock: GigaHertz) -> Self {
        let delay_line = DelayLine::for_cycles(delay_cycles, clock);
        let l_d = 1.0 - delay_line.transmission();
        Self {
            alpha: (1.0 - l_d) / (2.0 - l_d),
            delay_line,
        }
    }

    /// The exact ReFOCUS-FF configuration: balanced split on a 16-cycle
    /// delay line at 10 GHz.
    pub fn refocus_ff() -> Self {
        Self::balanced(16, GigaHertz::new(10.0))
    }

    /// Split ratio `α` (fraction of power going directly to the JTC).
    pub fn split_ratio(&self) -> f64 {
        self.alpha
    }

    /// The delay line this buffer is built on.
    pub fn delay_line(&self) -> &DelayLine {
        &self.delay_line
    }

    /// Number of replays: always 1 for the feedforward design.
    pub fn reuses(&self) -> u32 {
        1
    }

    /// Powers of the `(direct, delayed)` copies for a given input power.
    pub fn copy_powers(&self, power_in: f64) -> (f64, f64) {
        let direct = self.alpha * power_in;
        let delayed = self
            .delay_line
            .propagate_power((1.0 - self.alpha) * power_in);
        (direct, delayed)
    }

    /// Average laser power relative to a bufferless system: the laser must
    /// emit `1/α` to deliver minimum power on the compute arm, but fires
    /// only every other cycle — `1/(2α)` (§5.4.1).
    pub fn relative_laser_power(&self) -> f64 {
        1.0 / (2.0 * self.alpha)
    }

    /// Dynamic range across copies: 1 by construction of the balanced split.
    pub fn dynamic_range(&self) -> f64 {
        let (a, b) = self.copy_powers(1.0);
        a.max(b) / a.min(b)
    }

    /// Duty cycle of the input DACs: new light every other cycle.
    pub fn dac_duty_cycle(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: GigaHertz = GigaHertz::new(10.0);

    /// Paper Table 5, α = 1/(R+1) rows.
    const TABLE5_OPTIMAL: [(u32, f64); 6] = [
        (1, 2.05),
        (3, 2.56),
        (7, 3.05),
        (15, 3.87),
        (31, 5.96),
        (63, 13.7),
    ];

    /// Paper Table 5, α = 0.5 rows: (R, relative LP, dynamic range).
    const TABLE5_HALF: [(u32, f64, f64); 6] = [
        (1, 2.05, 2.05),
        (3, 4.32, 8.64),
        (7, 38.4, 153.0),
        (15, 6.0e3, 4.8e4),
        (31, 3.0e8, 4.8e9),
        (63, 1.5e18, 4.7e19),
    ];

    fn assert_rel(actual: f64, expected: f64, tol: f64, ctx: &str) {
        let rel = (actual - expected).abs() / expected;
        assert!(
            rel < tol,
            "{ctx}: got {actual}, want {expected} (rel {rel})"
        );
    }

    #[test]
    fn table5_optimal_alpha_rows() {
        for (r, want) in TABLE5_OPTIMAL {
            let buf = FeedbackBuffer::with_optimal_split(r, 16, CLOCK).unwrap();
            assert_rel(buf.relative_laser_power(), want, 0.02, &format!("LP R={r}"));
            // The paper reports identical LP and dynamic range for optimal α.
            assert_rel(buf.dynamic_range(), want, 0.02, &format!("DR R={r}"));
        }
    }

    #[test]
    fn table5_half_alpha_rows() {
        for (r, lp, dr) in TABLE5_HALF {
            let buf = FeedbackBuffer::new(0.5, r, 16, CLOCK).unwrap();
            assert_rel(buf.relative_laser_power(), lp, 0.06, &format!("LP R={r}"));
            assert_rel(buf.dynamic_range(), dr, 0.06, &format!("DR R={r}"));
        }
    }

    #[test]
    fn closed_form_matches_component_simulation() {
        let buf = FeedbackBuffer::with_optimal_split(7, 4, CLOCK).unwrap();
        let sim = buf.simulate_replays();
        assert_eq!(sim.len(), 8);
        for (i, &p) in sim.iter().enumerate() {
            let want = buf.power_at_iteration(i as u32);
            assert!((p - want).abs() < 1e-12, "iteration {i}: {p} vs {want}");
        }
    }

    #[test]
    fn power_decays_monotonically() {
        let buf = FeedbackBuffer::refocus_fb();
        let seq = buf.simulate_replays();
        for w in seq.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn weight_rescale_compensates_decay() {
        let buf = FeedbackBuffer::refocus_fb();
        let factors = buf.weight_rescale_factors();
        assert_eq!(factors.len(), 16);
        for (i, &f) in factors.iter().enumerate() {
            // Attenuated input x rescaled output == constant.
            let effective = buf.power_at_iteration(i as u32) * f;
            assert!((effective - buf.power_at_iteration(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn refocus_fb_matches_paper_configuration() {
        let buf = FeedbackBuffer::refocus_fb();
        assert_eq!(buf.reuses(), 15);
        assert!((buf.split_ratio() - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(buf.delay_line().cycles(), 16);
        assert!((buf.dac_duty_cycle() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn feedforward_balanced_split_matches_eq4() {
        let buf = FeedforwardBuffer::refocus_ff();
        let l_d = 1.0 - buf.delay_line().transmission();
        let want = (1.0 - l_d) / (2.0 - l_d);
        assert!((buf.split_ratio() - want).abs() < 1e-15);
        // Slightly below 0.5 because the delayed arm loses a little power.
        assert!(buf.split_ratio() < 0.5);
        assert!(buf.split_ratio() > 0.49);
    }

    #[test]
    fn feedforward_copies_are_balanced() {
        for cycles in [1, 4, 16, 64] {
            let buf = FeedforwardBuffer::balanced(cycles, CLOCK);
            let (a, b) = buf.copy_powers(2.5);
            assert!((a - b).abs() < 1e-12, "cycles={cycles}");
            assert!((buf.dynamic_range() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn feedforward_laser_power_slightly_above_one() {
        let buf = FeedforwardBuffer::refocus_ff();
        let lp = buf.relative_laser_power();
        // 1/(2α) with α just under 0.5: a hair above 1.
        assert!(lp > 1.0 && lp < 1.05, "lp = {lp}");
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert_eq!(
            FeedbackBuffer::new(0.0, 1, 1, CLOCK),
            Err(BufferError::InvalidSplitRatio { alpha: 0.0 })
        );
        assert_eq!(
            FeedbackBuffer::new(1.0, 1, 1, CLOCK),
            Err(BufferError::InvalidSplitRatio { alpha: 1.0 })
        );
        assert_eq!(
            FeedbackBuffer::new(0.5, 0, 1, CLOCK),
            Err(BufferError::ZeroReuse)
        );
    }

    #[test]
    fn more_reuse_lowers_dac_duty() {
        let few = FeedbackBuffer::with_optimal_split(3, 16, CLOCK).unwrap();
        let many = FeedbackBuffer::with_optimal_split(15, 16, CLOCK).unwrap();
        assert!(many.dac_duty_cycle() < few.dac_duty_cycle());
    }

    #[test]
    fn optimal_alpha_beats_half_for_large_r() {
        // §5.4.2: without optimizing α, reusing 7+ times is infeasible.
        let opt = FeedbackBuffer::with_optimal_split(15, 16, CLOCK).unwrap();
        let half = FeedbackBuffer::new(0.5, 15, 16, CLOCK).unwrap();
        assert!(opt.relative_laser_power() < 5.0);
        assert!(half.relative_laser_power() > 1e3);
    }

    #[test]
    fn ideal_switch_stream_matches_replay_powers() {
        let buf = FeedbackBuffer::with_optimal_split(3, 2, CLOCK).unwrap();
        let stream = buf.simulate_stream_with_leaky_switch(&[1.0], 0.0);
        let replays = buf.simulate_replays();
        assert_eq!(stream.len(), replays.len());
        for (amp, power) in stream.iter().zip(&replays) {
            // Amplitudes squared are the replay powers.
            assert!((amp * amp - power).abs() < 1e-12);
        }
    }

    #[test]
    fn leaky_switch_corrupts_generations() {
        let buf = FeedbackBuffer::with_optimal_split(3, 2, CLOCK).unwrap();
        // Two generations: with leakage, the second generation's cycle
        // carries a ghost of the first signal.
        let ideal = buf.simulate_stream_with_leaky_switch(&[1.0, 1.0], 0.0);
        let leaky = buf.simulate_stream_with_leaky_switch(&[1.0, 1.0], 0.04);
        let gen2 = 4; // first cycle of the second generation
        assert!(
            (ideal[gen2] - ideal[0]).abs() < 1e-12,
            "identical generations"
        );
        assert!(leaky[gen2] > ideal[gen2], "ghost adds optical power");
    }

    #[test]
    fn corruption_grows_with_leakage() {
        let buf = FeedbackBuffer::refocus_fb();
        let mut prev = 0.0;
        for leakage in [0.0, 1e-4, 1e-3, 1e-2, 0.1] {
            let c = buf.switch_leakage_corruption(leakage);
            assert!(c >= prev, "leakage {leakage}: {c} < {prev}");
            prev = c;
        }
        assert_eq!(buf.switch_leakage_corruption(0.0), 0.0);
    }

    #[test]
    fn switch_extinction_spec_for_8bit_precision() {
        // A concrete spec this model yields: a single 20-30 dB ring is NOT
        // enough for 8-bit precision, but a 50 dB switch (e.g. cascaded
        // rings) keeps the stream's RMS corruption under half an LSB.
        let buf = FeedbackBuffer::refocus_fb();
        let half_lsb = 0.5 / 255.0;
        assert!(
            buf.switch_leakage_corruption(1e-3) > half_lsb,
            "30 dB passes?!"
        );
        assert!(
            buf.switch_leakage_corruption(1e-5) < half_lsb,
            "corruption at 50 dB = {}",
            buf.switch_leakage_corruption(1e-5)
        );
    }

    #[test]
    fn loss_variation_transparent_matches_simulate_replays() {
        use crate::faults::{FaultInjector, FaultSpec};
        let buf = FeedbackBuffer::refocus_fb();
        let inj = FaultInjector::new(FaultSpec::none(), 3);
        let varied = buf.replay_powers_with_loss_variation(&inj, 0);
        let nominal = buf.simulate_replays();
        assert_eq!(varied.len(), nominal.len());
        for (v, n) in varied.iter().zip(&nominal) {
            assert!((v - n).abs() < 1e-15);
        }
        // Not bit-exact zero: powi(-i) vs the multiplicative loop differ
        // by accumulated rounding.
        assert!(buf.rescale_error_with_loss_variation(&inj, 0) < 1e-12);
    }

    #[test]
    fn loss_variation_perturbs_replays_and_rescale_error_grows() {
        use crate::faults::{FaultInjector, FaultSpec};
        let buf = FeedbackBuffer::refocus_fb();
        let small = FaultInjector::new(FaultSpec::none().with_buffer_loss_sigma(0.005), 3);
        let large = FaultInjector::new(FaultSpec::none().with_buffer_loss_sigma(0.02), 3);
        let e_small = buf.rescale_error_with_loss_variation(&small, 0);
        let e_large = buf.rescale_error_with_loss_variation(&large, 0);
        assert!(e_small > 0.0);
        // Same seed ⇒ same normal draws scaled by sigma ⇒ larger error.
        assert!(e_large > e_small);
    }

    #[test]
    fn error_display() {
        assert!(BufferError::ZeroReuse.to_string().contains("zero reuses"));
        assert!(BufferError::InvalidSplitRatio { alpha: 2.0 }
            .to_string()
            .contains("2"));
    }
}
