//! # refocus-photonics
//!
//! Fourier-optics substrate for the ReFOCUS photonic neural-network
//! accelerator simulator (Li et al., MICRO 2023).
//!
//! This crate provides everything below the architecture level:
//!
//! * [`complex`] / [`fft`] / [`signal`] — the math: complex fields, FFTs
//!   (radix-2 + Bluestein), and reference convolution/correlation.
//! * [`components`] — behavioural + cost models of every photonic component
//!   in the paper's Table 6 (MRR, Y-junction, delay line, laser,
//!   photodetector, lens, nonlinear material) and the 8-bit data converters.
//! * [`jtc`] — the Joint Transform Correlator field simulation: input plane
//!   → lens → square-law nonlinearity → lens → photodetectors, validated
//!   against direct correlation.
//! * [`buffer`] — the feedback / feedforward optical buffers that let
//!   ReFOCUS reuse light (paper Eq. 2–4, Table 5).
//! * [`wdm`] — wavelength-division multiplexing with shared lenses and
//!   detector-level channel accumulation.
//! * [`noise`] — seeded shot/thermal/relative noise injection (§7.2).
//! * [`faults`] — structural device-fault models (stuck MRR taps, dead
//!   detector pixels, laser drift, buffer loss variation, WDM crosstalk)
//!   composing with [`noise`].
//! * [`units`] — physical-unit newtypes (watts, mm², dB, …) used across the
//!   workspace.
//!
//! ## Quick example: an optical convolution
//!
//! ```
//! use refocus_photonics::jtc::Jtc;
//!
//! let jtc = Jtc::ideal();
//! let out = jtc.correlate(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0])?;
//! for (got, want) in out.valid().iter().zip([3.0, 5.0, 7.0]) {
//!     assert!((got - want).abs() < 1e-9);
//! }
//! # Ok::<(), refocus_photonics::jtc::JtcError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod complex;
pub mod components;
pub mod dispersion;
pub mod faults;
pub mod fft;
pub mod four_f;
pub mod jtc;
pub mod noise;
pub mod signal;
pub mod units;
pub mod wdm;

pub use buffer::{FeedbackBuffer, FeedforwardBuffer};
pub use complex::Complex64;
pub use faults::{FaultInjector, FaultSpec};
pub use jtc::{Jtc, JtcError, JtcOutput};
pub use wdm::WdmBus;
