//! Wavelength-division multiplexing (WDM) model (paper §4.2).
//!
//! WDM encodes several data channels onto one waveguide using different
//! wavelengths. Everything the waveguide does — phase shifts, delays, and
//! crucially the lens's Fourier transform — is applied to *all* wavelengths
//! at once, so the (huge) lenses are shared. At the output, ReFOCUS picks
//! wavelengths close enough together that a single photodetector captures
//! them all, *summing* their convolution results — exactly the channel
//! accumulation a CNN needs. No decoder MRRs are required.
//!
//! The paper's simulations bound the usable wavelength count at <4 (the
//! spatial spread of the correlation terms grows with wavelength spacing);
//! ReFOCUS uses `N_λ = 2`.

use crate::jtc::{Jtc, JtcError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of wavelengths a shared photodetector can capture
/// (paper §4.2.3: "our simulation suggests the number of wavelengths should
/// be less than 4").
pub const MAX_WAVELENGTHS: usize = 3;

/// Errors from WDM bus construction or use.
#[derive(Debug, Clone, PartialEq)]
pub enum WdmError {
    /// Requested more wavelengths than a shared photodetector supports.
    TooManyWavelengths {
        /// The rejected channel count.
        requested: usize,
    },
    /// No channels requested.
    NoChannels,
    /// Channel data count does not match the bus's wavelength count.
    ChannelCountMismatch {
        /// Channels the bus carries.
        expected: usize,
        /// Channels supplied.
        got: usize,
    },
    /// A per-channel JTC pass failed.
    Jtc(JtcError),
}

impl fmt::Display for WdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdmError::TooManyWavelengths { requested } => write!(
                f,
                "{requested} wavelengths exceed the {MAX_WAVELENGTHS}-channel photodetector limit"
            ),
            WdmError::NoChannels => write!(f, "a WDM bus needs at least one wavelength"),
            WdmError::ChannelCountMismatch { expected, got } => {
                write!(f, "expected {expected} channel inputs, got {got}")
            }
            WdmError::Jtc(e) => write!(f, "per-channel JTC pass failed: {e}"),
        }
    }
}

impl std::error::Error for WdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WdmError::Jtc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JtcError> for WdmError {
    fn from(e: JtcError) -> Self {
        WdmError::Jtc(e)
    }
}

/// A WDM bus carrying `N_λ` independent channels through one shared JTC.
///
/// # Examples
///
/// ```
/// use refocus_photonics::wdm::WdmBus;
/// use refocus_photonics::jtc::Jtc;
///
/// let bus = WdmBus::new(2).unwrap();
/// let jtc = Jtc::ideal();
/// let ch0 = (vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0]);
/// let ch1 = (vec![0.5, 0.5, 0.5, 0.5], vec![2.0, 0.0]);
/// let out = bus.correlate_accumulate(&jtc, &[ch0, ch1]).unwrap();
/// // Detector sums both channels' valid correlations:
/// // ch0: [3,5,7]; ch1: [1,1,1] -> [4,6,8]
/// for (got, want) in out.iter().zip([4.0, 6.0, 8.0]) {
///     assert!((got - want).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WdmBus {
    wavelengths: usize,
    /// Channel spacing in nanometres around the 1550 nm carrier.
    spacing_nm_milli: u32,
}

impl WdmBus {
    /// Default channel spacing: 0.8 nm (100 GHz ITU grid).
    pub const DEFAULT_SPACING_NM: f64 = 0.8;

    /// Creates a bus with `wavelengths` channels.
    ///
    /// # Errors
    ///
    /// Returns [`WdmError`] if `wavelengths` is 0 or exceeds
    /// [`MAX_WAVELENGTHS`].
    pub fn new(wavelengths: usize) -> Result<Self, WdmError> {
        if wavelengths == 0 {
            return Err(WdmError::NoChannels);
        }
        if wavelengths > MAX_WAVELENGTHS {
            return Err(WdmError::TooManyWavelengths {
                requested: wavelengths,
            });
        }
        Ok(Self {
            wavelengths,
            spacing_nm_milli: (Self::DEFAULT_SPACING_NM * 1000.0) as u32,
        })
    }

    /// The ReFOCUS configuration: 2 wavelengths.
    pub fn refocus() -> Self {
        Self::new(2).expect("2 wavelengths is within the photodetector limit")
    }

    /// Number of channels carried.
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }

    /// Channel spacing in nanometres.
    pub fn spacing_nm(&self) -> f64 {
        self.spacing_nm_milli as f64 / 1000.0
    }

    /// The carrier wavelengths, centred on 1550 nm.
    pub fn channel_wavelengths_nm(&self) -> Vec<f64> {
        let centre = 1550.0;
        let n = self.wavelengths as f64;
        (0..self.wavelengths)
            .map(|i| centre + (i as f64 - (n - 1.0) / 2.0) * self.spacing_nm())
            .collect()
    }

    /// Runs one JTC pass per channel and accumulates the *valid* correlation
    /// windows at the shared photodetector.
    ///
    /// Each channel is a `(signal, kernel)` pair; all channels must produce
    /// equally sized valid windows (same signal/kernel lengths), as they
    /// share one detector array.
    ///
    /// # Errors
    ///
    /// Returns [`WdmError::ChannelCountMismatch`] if the channel count does
    /// not equal [`WdmBus::wavelengths`], or forwards the underlying
    /// [`JtcError`].
    ///
    /// # Panics
    ///
    /// Panics if channels produce differently sized valid windows.
    pub fn correlate_accumulate(
        &self,
        jtc: &Jtc,
        channels: &[(Vec<f64>, Vec<f64>)],
    ) -> Result<Vec<f64>, WdmError> {
        if channels.len() != self.wavelengths {
            return Err(WdmError::ChannelCountMismatch {
                expected: self.wavelengths,
                got: channels.len(),
            });
        }
        let mut acc: Option<Vec<f64>> = None;
        for (signal, kernel) in channels {
            let out = jtc.correlate(signal, kernel)?;
            let valid = out.valid();
            match &mut acc {
                None => acc = Some(valid.to_vec()),
                Some(sum) => {
                    assert_eq!(
                        sum.len(),
                        valid.len(),
                        "WDM channels must produce equal-sized outputs"
                    );
                    for (s, v) in sum.iter_mut().zip(valid) {
                        *s += v;
                    }
                }
            }
        }
        Ok(acc.expect("at least one wavelength guaranteed by constructor"))
    }

    /// Runs one accumulating pass under a device-fault model.
    ///
    /// The injector's thermal crosstalk first mixes a fraction of each
    /// channel's signal into its spectral neighbours; every channel then
    /// runs [`Jtc::correlate_with_faults`] (stuck taps, laser drift,
    /// dead pixels, analog noise) before the shared detector sums the
    /// valid windows. With a transparent injector this equals
    /// [`WdmBus::correlate_accumulate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`WdmBus::correlate_accumulate`].
    ///
    /// # Panics
    ///
    /// Panics if channels produce differently sized valid windows.
    pub fn correlate_accumulate_faulted(
        &self,
        jtc: &Jtc,
        channels: &[(Vec<f64>, Vec<f64>)],
        injector: &mut crate::faults::FaultInjector,
    ) -> Result<Vec<f64>, WdmError> {
        if channels.len() != self.wavelengths {
            return Err(WdmError::ChannelCountMismatch {
                expected: self.wavelengths,
                got: channels.len(),
            });
        }
        let mixed = injector.apply_crosstalk(channels);
        let mut acc: Option<Vec<f64>> = None;
        for (signal, kernel) in &mixed {
            let out = jtc.correlate_with_faults(signal, kernel, injector)?;
            let valid = out.valid();
            match &mut acc {
                None => acc = Some(valid.to_vec()),
                Some(sum) => {
                    assert_eq!(
                        sum.len(),
                        valid.len(),
                        "WDM channels must produce equal-sized outputs"
                    );
                    for (s, v) in sum.iter_mut().zip(valid) {
                        *s += v;
                    }
                }
            }
        }
        Ok(acc.expect("at least one wavelength guaranteed by constructor"))
    }

    /// Throughput multiplier WDM provides: one pass computes `N_λ` channel
    /// convolutions.
    pub fn throughput_factor(&self) -> f64 {
        self.wavelengths as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::correlate_valid;

    #[test]
    fn rejects_invalid_channel_counts() {
        assert_eq!(WdmBus::new(0), Err(WdmError::NoChannels));
        assert_eq!(
            WdmBus::new(4),
            Err(WdmError::TooManyWavelengths { requested: 4 })
        );
        assert!(WdmBus::new(3).is_ok());
    }

    #[test]
    fn refocus_uses_two_wavelengths() {
        let bus = WdmBus::refocus();
        assert_eq!(bus.wavelengths(), 2);
        assert_eq!(bus.throughput_factor(), 2.0);
    }

    #[test]
    fn channel_wavelengths_centred_and_spaced() {
        let bus = WdmBus::refocus();
        let w = bus.channel_wavelengths_nm();
        assert_eq!(w.len(), 2);
        assert!((w[1] - w[0] - 0.8).abs() < 1e-9);
        assert!(((w[0] + w[1]) / 2.0 - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn accumulation_equals_sum_of_channel_correlations() {
        let bus = WdmBus::refocus();
        let jtc = Jtc::ideal();
        let s0: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let k0 = vec![0.2, 0.5, 0.3];
        let s1: Vec<f64> = (0..12).map(|i| (i as f64 * 0.73).cos().abs()).collect();
        let k1 = vec![0.4, 0.1, 0.5];
        let got = bus
            .correlate_accumulate(&jtc, &[(s0.clone(), k0.clone()), (s1.clone(), k1.clone())])
            .unwrap();
        let want: Vec<f64> = correlate_valid(&s0, &k0)
            .iter()
            .zip(correlate_valid(&s1, &k1))
            .map(|(a, b)| a + b)
            .collect();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn channel_count_mismatch_detected() {
        let bus = WdmBus::refocus();
        let jtc = Jtc::ideal();
        let one = vec![(vec![1.0, 2.0], vec![1.0])];
        assert_eq!(
            bus.correlate_accumulate(&jtc, &one),
            Err(WdmError::ChannelCountMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn jtc_error_propagates() {
        let bus = WdmBus::new(1).unwrap();
        let jtc = Jtc::ideal();
        let bad = vec![(vec![-1.0], vec![1.0])];
        assert!(matches!(
            bus.correlate_accumulate(&jtc, &bad),
            Err(WdmError::Jtc(_))
        ));
    }

    #[test]
    fn faulted_accumulate_transparent_matches_clean() {
        use crate::faults::{FaultInjector, FaultSpec};
        let bus = WdmBus::refocus();
        let jtc = Jtc::ideal();
        let ch = vec![
            (vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0]),
            (vec![0.5, 0.5, 0.5, 0.5], vec![2.0, 0.0]),
        ];
        let mut inj = FaultInjector::new(FaultSpec::none(), 11);
        let clean = bus.correlate_accumulate(&jtc, &ch).unwrap();
        let faulted = bus
            .correlate_accumulate_faulted(&jtc, &ch, &mut inj)
            .unwrap();
        assert_eq!(clean, faulted);
    }

    #[test]
    fn crosstalk_changes_accumulated_output() {
        use crate::faults::{FaultInjector, FaultSpec};
        let bus = WdmBus::refocus();
        let jtc = Jtc::ideal();
        // Distinct channels so leakage is visible at the detector.
        let ch = vec![
            (vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0]),
            (vec![0.0, 0.0, 0.0, 1.0], vec![0.0, 1.0]),
        ];
        let mut inj = FaultInjector::new(FaultSpec::none().with_crosstalk(0.2), 11);
        let clean = bus.correlate_accumulate(&jtc, &ch).unwrap();
        let faulted = bus
            .correlate_accumulate_faulted(&jtc, &ch, &mut inj)
            .unwrap();
        let moved = clean
            .iter()
            .zip(&faulted)
            .any(|(a, b)| (a - b).abs() > 1e-9);
        assert!(moved, "crosstalk had no observable effect");
    }

    #[test]
    fn faulted_accumulate_channel_count_checked() {
        use crate::faults::{FaultInjector, FaultSpec};
        let bus = WdmBus::refocus();
        let jtc = Jtc::ideal();
        let mut inj = FaultInjector::new(FaultSpec::none(), 0);
        let one = vec![(vec![1.0, 2.0], vec![1.0])];
        assert_eq!(
            bus.correlate_accumulate_faulted(&jtc, &one, &mut inj),
            Err(WdmError::ChannelCountMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn error_display() {
        assert!(WdmError::NoChannels.to_string().contains("at least one"));
        assert!(WdmError::TooManyWavelengths { requested: 9 }
            .to_string()
            .contains("9"));
    }
}
