//! The conventional 4F correlator — the system JTC improves upon (§1, §2).
//!
//! A 4F system computes a convolution with two lenses and a *Fourier-domain
//! filter*: lens → pointwise multiply by the kernel's Fourier transform →
//! lens. The paper's background contrasts it with the JTC on two counts,
//! both of which this model makes concrete:
//!
//! 1. **Complex filters**: the Fourier transform of even a real kernel is
//!    complex-valued, so the filter mask must modulate amplitude *and*
//!    phase ([`FourF::filter_for_kernel`] returns complex values; the
//!    amplitude-only variant measurably degrades accuracy).
//! 2. **Filter size**: the mask must cover the whole Fourier plane — one
//!    complex value per *input* sample, not per kernel tap
//!    ([`FourF::filter_values_required`] vs the JTC's `k` taps).

use crate::complex::Complex64;
use crate::fft::{fft, ifft};
use crate::jtc::JtcError;
use serde::{Deserialize, Serialize};

/// A 1-D on-chip 4F convolution engine.
///
/// # Examples
///
/// ```
/// use refocus_photonics::four_f::FourF;
///
/// let four_f = FourF::new();
/// let signal = [0.1, 0.5, 0.9, 0.3, 0.7];
/// let kernel = [0.2, 0.6, 0.2];
/// let out = four_f.correlate(&signal, &kernel)?;
/// // Same valid cross-correlation the JTC computes:
/// let want: f64 = signal[0] * 0.2 + signal[1] * 0.6 + signal[2] * 0.2;
/// assert!((out[0] - want).abs() < 1e-9);
/// # Ok::<(), refocus_photonics::jtc::JtcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FourF {
    /// Drop the filter's phase (amplitude-only mask) — the cheap-hardware
    /// variant whose error the tests quantify.
    amplitude_only: bool,
}

impl FourF {
    /// An ideal 4F system with a full complex filter.
    pub fn new() -> Self {
        Self {
            amplitude_only: false,
        }
    }

    /// A 4F system restricted to amplitude-only filter masks.
    pub fn amplitude_only() -> Self {
        Self {
            amplitude_only: true,
        }
    }

    /// The Fourier-domain filter implementing cross-correlation with
    /// `kernel` on a plane of `plane_size` samples: `conj(FFT(kernel))`,
    /// zero-padded. One complex value per plane sample.
    pub fn filter_for_kernel(kernel: &[f64], plane_size: usize) -> Vec<Complex64> {
        let mut f: Vec<Complex64> = kernel.iter().map(|&v| Complex64::from_real(v)).collect();
        f.resize(plane_size, Complex64::ZERO);
        fft(&mut f);
        for v in f.iter_mut() {
            *v = v.conj();
        }
        f
    }

    /// Complex filter values a 4F system needs for a length-`signal_len`
    /// input — always the padded plane size, independent of the kernel.
    pub fn filter_values_required(signal_len: usize, kernel_len: usize) -> usize {
        (signal_len + kernel_len - 1).next_power_of_two()
    }

    /// Valid cross-correlation of `signal` with `kernel` through the 4F
    /// pipeline: lens → filter mask → lens → detector.
    ///
    /// # Errors
    ///
    /// Returns [`JtcError`] on empty or negative inputs (same input
    /// contract as the JTC for comparability).
    pub fn correlate(&self, signal: &[f64], kernel: &[f64]) -> Result<Vec<f64>, JtcError> {
        if signal.is_empty() || kernel.is_empty() {
            return Err(JtcError::EmptyInput);
        }
        if signal.iter().any(|&v| v < 0.0) {
            return Err(JtcError::NegativeValue { which: "signal" });
        }
        if kernel.iter().any(|&v| v < 0.0) {
            return Err(JtcError::NegativeValue { which: "kernel" });
        }
        if kernel.len() > signal.len() {
            return Err(JtcError::PlaneTooSmall {
                required: kernel.len(),
                available: signal.len(),
            });
        }
        let n = Self::filter_values_required(signal.len(), kernel.len());
        let mut filter = Self::filter_for_kernel(kernel, n);
        if self.amplitude_only {
            for v in filter.iter_mut() {
                *v = Complex64::from_real(v.norm());
            }
        }
        // First lens.
        let mut plane: Vec<Complex64> = signal.iter().map(|&v| Complex64::from_real(v)).collect();
        plane.resize(n, Complex64::ZERO);
        fft(&mut plane);
        // Fourier-plane filter mask.
        for (p, f) in plane.iter_mut().zip(&filter) {
            *p *= *f;
        }
        // Second lens.
        ifft(&mut plane);
        // Coherent detection of the valid window (lags 0 ..= S-K).
        let valid = signal.len() - kernel.len() + 1;
        Ok(plane[..valid].iter().map(|v| v.re).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jtc::Jtc;
    use crate::signal::correlate_valid;

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.31).sin() + 1.0) / 2.0)
            .collect()
    }

    #[test]
    fn four_f_matches_direct_correlation() {
        let four_f = FourF::new();
        for (ls, lk) in [(8usize, 3usize), (20, 5), (33, 7)] {
            let s = test_signal(ls);
            let k: Vec<f64> = (1..=lk).map(|i| i as f64 / lk as f64).collect();
            let got = four_f.correlate(&s, &k).unwrap();
            let want = correlate_valid(&s, &k);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "ls={ls} lk={lk}");
            }
        }
    }

    #[test]
    fn four_f_and_jtc_agree() {
        // Two very different optical architectures, same math.
        let s = test_signal(24);
        let k = vec![0.3, 0.5, 0.2];
        let via_4f = FourF::new().correlate(&s, &k).unwrap();
        let via_jtc = Jtc::ideal().correlate(&s, &k).unwrap();
        for (a, b) in via_4f.iter().zip(via_jtc.valid()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn fourier_filters_are_complex() {
        // §1: 4F filters need phase — the FT of a real asymmetric kernel
        // has substantial imaginary parts.
        let filter = FourF::filter_for_kernel(&[0.9, 0.1, 0.4], 16);
        let max_im = filter.iter().map(|v| v.im.abs()).fold(0.0, f64::max);
        let max_re = filter.iter().map(|v| v.re.abs()).fold(0.0, f64::max);
        assert!(max_im > 0.3 * max_re, "im={max_im}, re={max_re}");
    }

    #[test]
    fn amplitude_only_filter_degrades_result() {
        // Dropping the phase (the hardware-cheap option) visibly corrupts
        // the convolution — why 4F systems need full complex modulators.
        let s = test_signal(24);
        let k = vec![0.9, 0.1, 0.4];
        let want = correlate_valid(&s, &k);
        let got = FourF::amplitude_only().correlate(&s, &k).unwrap();
        let err: f64 = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let peak = want.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(err > 0.05 * peak, "err={err}, peak={peak}");
    }

    #[test]
    fn filter_size_scales_with_input_not_kernel() {
        // §1: "Fourier-domain filters need to have the same size as
        // inputs" — the JTC only programs k taps.
        let small_kernel = FourF::filter_values_required(256, 3);
        let large_kernel = FourF::filter_values_required(256, 25);
        assert!(small_kernel >= 256);
        assert_eq!(small_kernel, (256usize + 2).next_power_of_two());
        // Kernel size barely matters; input size dominates.
        assert!(large_kernel <= 2 * small_kernel);
        let long_input = FourF::filter_values_required(1024, 3);
        assert!(long_input >= 2 * small_kernel);
        // JTC comparison: a 3-tap kernel costs 3 programmable taps on a
        // JTC vs hundreds of complex filter values on a 4F system.
        assert!(small_kernel > 3 * 10);
    }

    #[test]
    fn input_contract_matches_jtc() {
        let four_f = FourF::new();
        assert_eq!(four_f.correlate(&[], &[1.0]), Err(JtcError::EmptyInput));
        assert_eq!(
            four_f.correlate(&[-1.0], &[1.0]),
            Err(JtcError::NegativeValue { which: "signal" })
        );
        assert!(matches!(
            four_f.correlate(&[1.0], &[1.0, 1.0]),
            Err(JtcError::PlaneTooSmall { .. })
        ));
    }
}
