//! Analog noise models (paper §7.2).
//!
//! Photonic computing is analog computing: shot noise at the photodetector,
//! thermal (Johnson) noise in the readout, and quantization error in the
//! converters all perturb results. The paper mitigates these by noise-aware
//! training; this module provides the seeded injection models such a flow
//! needs, plus a composite [`NoiseModel`] the functional simulator can apply
//! to detected outputs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A composed additive/relative noise model for detected intensities.
///
/// # Examples
///
/// ```
/// use refocus_photonics::noise::NoiseModel;
///
/// let mut noisy = NoiseModel::new(42).with_relative_sigma(0.01);
/// let clean = vec![1.0; 1000];
/// let out = noisy.apply(&clean);
/// let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
/// assert!((mean - 1.0).abs() < 0.01); // unbiased
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct NoiseModel {
    seed: u64,
    #[serde(skip)]
    rng: Option<StdRng>,
    /// Std-dev of multiplicative Gaussian noise (fraction of signal).
    relative_sigma: f64,
    /// Std-dev of additive Gaussian noise (absolute, detector-referred).
    additive_sigma: f64,
    /// Shot-noise scale: variance proportional to signal level, with this
    /// proportionality constant. Zero disables shot noise.
    shot_factor: f64,
}

impl Clone for NoiseModel {
    /// Cloning restarts the random stream from the seed (the in-flight
    /// generator state is not cloneable), so a clone replays the model's
    /// noise sequence from the beginning.
    ///
    /// **Footgun:** a clone therefore draws the *same* noise values as the
    /// original drew from its own start — two clones perturbing two
    /// signals apply perfectly correlated noise, which silently understates
    /// (or overstates) the combined error. When you need a second,
    /// statistically independent stream, use [`NoiseModel::split`] instead
    /// of `clone`.
    fn clone(&self) -> Self {
        Self {
            seed: self.seed,
            rng: None,
            relative_sigma: self.relative_sigma,
            additive_sigma: self.additive_sigma,
            shot_factor: self.shot_factor,
        }
    }
}

impl NoiseModel {
    /// Creates a noiseless model with the given seed (noise terms default
    /// to zero; enable them with the builder methods).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: None,
            relative_sigma: 0.0,
            additive_sigma: 0.0,
            shot_factor: 0.0,
        }
    }

    /// Enables multiplicative Gaussian noise of the given relative sigma.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_relative_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        self.relative_sigma = sigma;
        self
    }

    /// Enables additive Gaussian noise of the given absolute sigma.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_additive_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        self.additive_sigma = sigma;
        self
    }

    /// Enables shot noise: variance = `factor * signal` (Poisson-like).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn with_shot_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "factor must be non-negative, got {factor}");
        self.shot_factor = factor;
        self
    }

    /// Returns `true` if every noise source is disabled.
    pub fn is_noiseless(&self) -> bool {
        self.relative_sigma == 0.0 && self.additive_sigma == 0.0 && self.shot_factor == 0.0
    }

    /// Draws one standard normal sample (Box–Muller).
    fn standard_normal(&mut self) -> f64 {
        let rng = self
            .rng
            .get_or_insert_with(|| StdRng::seed_from_u64(self.seed));
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Perturbs one detected intensity.
    pub fn perturb(&mut self, value: f64) -> f64 {
        if self.is_noiseless() {
            return value;
        }
        let mut v = value;
        if self.relative_sigma > 0.0 {
            v *= 1.0 + self.relative_sigma * self.standard_normal();
        }
        if self.shot_factor > 0.0 {
            let sigma = (self.shot_factor * value.abs()).sqrt();
            v += sigma * self.standard_normal();
        }
        if self.additive_sigma > 0.0 {
            v += self.additive_sigma * self.standard_normal();
        }
        v
    }

    /// Applies the model to a whole detected output vector.
    pub fn apply(&mut self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.perturb(v)).collect()
    }

    /// Resets the random stream so the same noise sequence replays —
    /// required for noise-aware training reproducibility.
    pub fn reset(&mut self) {
        self.rng = Some(StdRng::seed_from_u64(self.seed));
    }

    /// The seed this model's stream derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a new model with the same noise parameters but an
    /// *independent* seeded stream, deterministically from this model's
    /// seed.
    ///
    /// Unlike [`Clone::clone`] — which replays the parent's exact noise
    /// sequence and therefore produces *correlated* noise across uses —
    /// `split` mixes the seed through an avalanche hash, so parent and
    /// child streams are statistically independent while the pair is
    /// still fully reproducible from the parent seed. Repeated splits
    /// chain: `m.split().split()` differs from both `m` and `m.split()`.
    ///
    /// Use `split` when fanning one configured model out to several
    /// consumers (e.g. per-layer or per-tile noise) that must not see
    /// identical perturbations.
    pub fn split(&self) -> NoiseModel {
        self.split_indexed(0)
    }

    /// Derives the `index`-th of a family of independent child streams.
    ///
    /// `split_indexed(0)` is exactly [`NoiseModel::split`]; distinct
    /// indices yield distinct, decorrelated child seeds. This is the
    /// primitive parallel fan-outs use: work item `i` takes
    /// `split_indexed(i)` so every item sees its own stream *regardless
    /// of execution order* — the derivation is a pure function of
    /// `(parent seed, index)`, never of which worker ran first.
    pub fn split_indexed(&self, index: u64) -> NoiseModel {
        // splitmix64 finalizer: full-avalanche mixing of the parent seed,
        // with an odd offset so split(seed) != seed even at fixed points.
        // The index enters pre-mix through an odd multiplier so adjacent
        // indices land far apart after the avalanche.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            seed: z,
            rng: None,
            relative_sigma: self.relative_sigma,
            additive_sigma: self.additive_sigma,
            shot_factor: self.shot_factor,
        }
    }
}

/// Signal-to-noise ratio in dB between a clean and noisy realization.
///
/// # Panics
///
/// Panics if lengths differ or `clean` has zero energy.
pub fn snr_db(clean: &[f64], noisy: &[f64]) -> f64 {
    assert_eq!(clean.len(), noisy.len(), "length mismatch");
    let signal: f64 = clean.iter().map(|v| v * v).sum();
    assert!(signal > 0.0, "clean signal has zero energy");
    let noise: f64 = clean
        .iter()
        .zip(noisy)
        .map(|(c, n)| (c - n) * (c - n))
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_model_is_identity() {
        let mut m = NoiseModel::new(1);
        assert!(m.is_noiseless());
        assert_eq!(m.perturb(3.25), 3.25);
        assert_eq!(m.apply(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let mut a = NoiseModel::new(99).with_relative_sigma(0.1);
        let mut b = NoiseModel::new(99).with_relative_sigma(0.1);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.apply(&x), b.apply(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::new(1).with_relative_sigma(0.1);
        let mut b = NoiseModel::new(2).with_relative_sigma(0.1);
        assert_ne!(a.perturb(1.0), b.perturb(1.0));
    }

    #[test]
    fn reset_replays_sequence() {
        let mut m = NoiseModel::new(7).with_additive_sigma(0.5);
        let first = m.apply(&[1.0, 1.0, 1.0]);
        m.reset();
        let second = m.apply(&[1.0, 1.0, 1.0]);
        assert_eq!(first, second);
    }

    #[test]
    fn relative_noise_statistics() {
        let mut m = NoiseModel::new(3).with_relative_sigma(0.05);
        let clean = vec![2.0; 20_000];
        let noisy = m.apply(&clean);
        let mean: f64 = noisy.iter().sum::<f64>() / noisy.len() as f64;
        let var: f64 =
            noisy.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / noisy.len() as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean = {mean}");
        // Expected std = 0.05 * 2.0 = 0.1 -> var = 0.01.
        assert!((var - 0.01).abs() < 0.002, "var = {var}");
    }

    #[test]
    fn shot_noise_scales_with_signal() {
        let mut m = NoiseModel::new(5).with_shot_factor(0.01);
        let weak = vec![0.1; 20_000];
        let strong = vec![10.0; 20_000];
        let var = |clean: &[f64], noisy: &[f64]| -> f64 {
            clean
                .iter()
                .zip(noisy)
                .map(|(c, n)| (c - n) * (c - n))
                .sum::<f64>()
                / clean.len() as f64
        };
        let vw = var(&weak, &m.apply(&weak));
        m.reset();
        let vs = var(&strong, &m.apply(&strong));
        // Variance ratio should be ~signal ratio (100x).
        let ratio = vs / vw;
        assert!(ratio > 50.0 && ratio < 200.0, "ratio = {ratio}");
    }

    #[test]
    fn clone_replays_parent_stream() {
        let mut parent = NoiseModel::new(13).with_relative_sigma(0.1);
        let mut clone = parent.clone();
        // The documented (and footgun-prone) behavior: identical draws.
        assert_eq!(parent.perturb(1.0), clone.perturb(1.0));
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent = NoiseModel::new(13).with_relative_sigma(0.1);
        let mut child = parent.split();
        let mut child2 = parent.split();
        assert!(!child.is_noiseless(), "split must keep noise parameters");
        // Deterministic: same parent ⇒ same child stream.
        assert_eq!(child.perturb(1.0), child2.perturb(1.0));
        // Independent: child draws differ from the parent's.
        parent.reset();
        child.reset();
        let p: Vec<f64> = (0..8).map(|_| parent.perturb(1.0)).collect();
        let c: Vec<f64> = (0..8).map(|_| child.perturb(1.0)).collect();
        assert_ne!(p, c);
        // Chained splits keep diverging.
        let grandchild = child.split();
        assert_ne!(grandchild.seed(), child.seed());
        assert_ne!(grandchild.seed(), parent.seed());
    }

    #[test]
    fn split_indexed_zero_matches_split_and_indices_diverge() {
        let parent = NoiseModel::new(13).with_relative_sigma(0.1);
        assert_eq!(parent.split().seed(), parent.split_indexed(0).seed());
        let seeds: Vec<u64> = (0..16).map(|i| parent.split_indexed(i).seed()).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "indices {i} and {j} collided");
            }
        }
        // Pure function of (seed, index): re-derivation is stable.
        assert_eq!(seeds[7], parent.split_indexed(7).seed());
    }

    #[test]
    fn snr_computation() {
        let clean = vec![1.0, 1.0, 1.0, 1.0];
        let noisy = vec![1.1, 0.9, 1.1, 0.9];
        // signal = 4, noise = 4 * 0.01 = 0.04 -> SNR = 20 dB.
        assert!((snr_db(&clean, &noisy) - 20.0).abs() < 1e-9);
        assert_eq!(snr_db(&clean, &clean), f64::INFINITY);
    }

    #[test]
    fn higher_sigma_lowers_snr() {
        let clean: Vec<f64> = (0..1000).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
        let mut low = NoiseModel::new(11).with_relative_sigma(0.01);
        let mut high = NoiseModel::new(11).with_relative_sigma(0.1);
        let snr_low = snr_db(&clean, &low.apply(&clean));
        let snr_high = snr_db(&clean, &high.apply(&clean));
        assert!(snr_low > snr_high + 10.0);
    }
}
