//! Property-based tests for the photonics substrate.

use proptest::prelude::*;
use refocus_photonics::buffer::{FeedbackBuffer, FeedforwardBuffer};
use refocus_photonics::complex::Complex64;
use refocus_photonics::fft::{energy, fft_of, ifft_of};
use refocus_photonics::jtc::Jtc;
use refocus_photonics::signal::{
    circular_convolve, convolve_direct, convolve_fft, correlate, max_abs_diff, zero_pad,
};
use refocus_photonics::units::{Decibels, GigaHertz};
use refocus_photonics::wdm::WdmBus;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0f64, 1..max_len)
}

fn complex_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

proptest! {
    #[test]
    fn fft_round_trip_is_identity(x in complex_signal(128)) {
        let back = ifft_of(&fft_of(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).norm() < 1e-7);
        }
    }

    #[test]
    fn parseval_holds_for_any_length(x in complex_signal(96)) {
        let t = energy(&x);
        let f = energy(&fft_of(&x)) / x.len() as f64;
        prop_assert!((t - f).abs() < 1e-6 * t.max(1.0));
    }

    #[test]
    fn fft_is_linear(
        x in complex_signal(64),
        k in -5.0..5.0f64,
    ) {
        let scaled: Vec<Complex64> = x.iter().map(|v| v.scale(k)).collect();
        let fx = fft_of(&x);
        let fs = fft_of(&scaled);
        for (a, b) in fs.iter().zip(&fx) {
            prop_assert!((*a - b.scale(k)).norm() < 1e-6);
        }
    }

    #[test]
    fn convolution_theorem(a in signal_strategy(64), b in signal_strategy(32)) {
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        prop_assert!(max_abs_diff(&d, &f) < 1e-7);
    }

    #[test]
    fn circular_equals_linear_with_padding(a in signal_strategy(32), b in signal_strategy(32)) {
        let n = a.len() + b.len() - 1;
        let lin = convolve_direct(&a, &b);
        let circ = circular_convolve(&zero_pad(&a, n), &zero_pad(&b, n));
        prop_assert!(max_abs_diff(&lin, &circ) < 1e-9);
    }

    #[test]
    fn jtc_computes_cross_correlation(
        s in signal_strategy(48),
        k in signal_strategy(16),
    ) {
        let jtc = Jtc::ideal();
        let out = jtc.correlate(&s, &k).unwrap();
        let want = correlate(&s, &k);
        prop_assert_eq!(out.full().len(), want.len());
        let scale = want.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prop_assert!(max_abs_diff(out.full(), &want) < 1e-7 * scale);
    }

    #[test]
    fn quantized_jtc_bounded_error(
        s in prop::collection::vec(0.01..1.0f64, 4..32),
        k in prop::collection::vec(0.01..1.0f64, 2..6),
    ) {
        let jtc = Jtc::quantized();
        let out = jtc.correlate(&s, &k).unwrap();
        let want = correlate(&s, &k);
        let out_peak = want.iter().fold(0.0f64, |m, &v| m.max(v));
        // Analytic bound: both operands quantize against the joint peak P
        // with step q = P/255 (error <= q/2 each), so each of the K product
        // terms errs by <= P*q/2 + P*q/2 + O(q^2), and the ADC adds half an
        // LSB of the output full-scale.
        let p = s.iter().chain(k.iter()).fold(0.0f64, |m, &v| m.max(v));
        let q = p / 255.0;
        let bound = k.len() as f64 * (p * q + q * q / 4.0) + out_peak / 255.0 + 1e-9;
        prop_assert!(
            max_abs_diff(out.full(), &want) <= bound,
            "err {} > bound {bound}",
            max_abs_diff(out.full(), &want)
        );
    }

    #[test]
    fn feedback_buffer_closed_form_matches_simulation(
        r in 1u32..20,
        cycles in 1u32..33,
        alpha_scale in 0.2..0.8f64,
    ) {
        let alpha = alpha_scale; // any (0,1) split
        let buf = FeedbackBuffer::new(alpha, r, cycles, GigaHertz::new(10.0)).unwrap();
        let sim = buf.simulate_replays();
        for (i, p) in sim.iter().enumerate() {
            prop_assert!((p - buf.power_at_iteration(i as u32)).abs() < 1e-12);
        }
    }

    #[test]
    fn feedback_dynamic_range_grows_with_reuse(r in 1u32..30) {
        let clock = GigaHertz::new(10.0);
        let a = FeedbackBuffer::with_optimal_split(r, 16, clock).unwrap();
        let b = FeedbackBuffer::with_optimal_split(r + 1, 16, clock).unwrap();
        prop_assert!(b.dynamic_range() > a.dynamic_range());
    }

    #[test]
    fn feedforward_always_balanced(cycles in 1u32..200) {
        let buf = FeedforwardBuffer::balanced(cycles, GigaHertz::new(10.0));
        let (a, b) = buf.copy_powers(1.0);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!(buf.relative_laser_power() >= 1.0);
    }

    #[test]
    fn db_transmission_round_trip(t in 0.001..1.0f64) {
        let db = Decibels::from_transmission(t);
        prop_assert!((db.transmission() - t).abs() < 1e-10);
        prop_assert!(db.value() >= 0.0);
    }

    #[test]
    fn wdm_accumulation_is_channel_sum(
        s0 in prop::collection::vec(0.0..1.0f64, 8..24),
        k in prop::collection::vec(0.0..1.0f64, 3..4),
    ) {
        // Duplicate channel: accumulated output must be exactly 2x one channel.
        let bus = WdmBus::new(2).unwrap();
        let jtc = Jtc::ideal();
        let single = jtc.correlate(&s0, &k).unwrap();
        let acc = bus
            .correlate_accumulate(&jtc, &[(s0.clone(), k.clone()), (s0.clone(), k.clone())])
            .unwrap();
        for (a, b) in acc.iter().zip(single.valid()) {
            prop_assert!((a - 2.0 * b).abs() < 1e-7);
        }
    }
}
